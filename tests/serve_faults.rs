//! Seeded chaos suite for the serving stack: deterministic fault
//! injection must be bit-reproducible, chaos runs must never produce a
//! wrong answer (differential-checked against the miner on the same
//! window), builder panics must degrade the service to its last good
//! snapshot — and raw malformed wire input must yield typed error
//! frames, never a panic or a hang.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use plt::core::miner::Miner;
use plt::serve::{
    bootstrap, serve, BuilderConfig, Client, ClientConfig, FaultConfig, FaultPlan, RetryPolicy,
    ServerConfig, ServerHandle, ServerModel,
};
use plt::ConditionalMiner;

/// Both serving models where the platform has them; the chaos and
/// malformed-input suites must hold for each.
fn server_models() -> Vec<ServerModel> {
    if cfg!(target_os = "linux") {
        vec![ServerModel::Threads, ServerModel::Reactor]
    } else {
        vec![ServerModel::Threads]
    }
}

/// Seeds every chaos test runs under — distinct, fixed, and echoed in
/// assertion messages so a failure names its seed.
const CHAOS_SEEDS: [u64; 3] = [0xA11CE, 0x0B0B_5EED, 0xC0FFEE];

fn warmup_db() -> Vec<Vec<u32>> {
    // Small but non-trivial: overlapping itemsets across 6 items so the
    // mined family has depth (pairs and triples), deterministic content.
    (0..48)
        .map(|i: u32| match i % 4 {
            0 => vec![1, 2, 3],
            1 => vec![1, 2, 4],
            2 => vec![2, 3, 5],
            _ => vec![1, 3, 6],
        })
        .collect()
}

fn start(
    warmup: &[Vec<u32>],
    min_support: u64,
    server_fault: Option<Arc<FaultPlan>>,
    builder_fault: Option<Arc<FaultPlan>>,
    model: ServerModel,
) -> (
    ServerHandle,
    plt::serve::BuilderHandle,
    Arc<plt::serve::Engine>,
) {
    let config = BuilderConfig {
        window_capacity: warmup.len() * 4,
        min_support,
        fault: builder_fault,
        ..BuilderConfig::default()
    };
    let (engine, builder) = bootstrap(warmup, config).expect("bootstrap");
    let handle = serve(
        "127.0.0.1:0",
        engine.clone(),
        Some(builder.queue()),
        ServerConfig {
            server_model: model,
            acceptors: 2,
            reactors: 2,
            fault: server_fault,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    (handle, builder, engine)
}

// ---------------------------------------------------------------------------
// Reproducibility: the fault sequence is a pure function of the seed.
// ---------------------------------------------------------------------------

/// Drives a plan through a fixed mixed-site draw schedule, as the server,
/// client, and builder would, and returns the injected-event log.
fn drive(plan: &FaultPlan) -> Vec<plt::serve::FaultEvent> {
    use plt::serve::Site;
    for i in 0..400 {
        let _ = plan.frame_fault(Site::ServerWrite, 64 + i % 37);
        let _ = plan.frame_fault(Site::ClientWrite, 32 + i % 17);
        let _ = plan.io_fault(Site::ServerRead);
        let _ = plan.io_fault(Site::ClientRead);
        let _ = plan.io_fault(Site::ClientWrite);
    }
    plan.events()
}

#[test]
fn same_seed_reproduces_the_exact_fault_sequence() {
    for seed in CHAOS_SEEDS {
        let a = drive(&FaultPlan::new(FaultConfig::chaos(seed)));
        let b = drive(&FaultPlan::new(FaultConfig::chaos(seed)));
        assert!(!a.is_empty(), "seed {seed:#x}: chaos knobs never fired");
        assert_eq!(a, b, "seed {seed:#x}: fault sequence not reproducible");
    }
    // Distinct seeds give distinct sequences — the knob is real.
    let a = drive(&FaultPlan::new(FaultConfig::chaos(CHAOS_SEEDS[0])));
    let b = drive(&FaultPlan::new(FaultConfig::chaos(CHAOS_SEEDS[1])));
    assert_ne!(a, b);
}

// ---------------------------------------------------------------------------
// Chaos differential: under injected faults on both sides of the wire,
// every *successful* answer must still be exactly the miner's answer.
// ---------------------------------------------------------------------------

#[test]
fn chaos_runs_never_return_a_wrong_answer() {
    let db = warmup_db();
    let min_support = 6;
    let truth = ConditionalMiner::default().mine(&db, min_support);
    assert!(truth.len() >= 10, "fixture must have a real family");

    for (seed, model) in CHAOS_SEEDS
        .iter()
        .flat_map(|&s| server_models().into_iter().map(move |m| (s, m)))
    {
        let server_plan = FaultPlan::shared(FaultConfig::chaos(seed));
        let client_plan = FaultPlan::shared(FaultConfig::chaos(seed.wrapping_add(1)));
        let (handle, builder, _engine) =
            start(&db, min_support, Some(server_plan.clone()), None, model);

        let mut client = Client::with_config(
            handle.addr(),
            ClientConfig {
                retry: RetryPolicy {
                    max_retries: 8,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(20),
                    jitter_seed: seed,
                },
                fault: Some(client_plan.clone()),
                ..ClientConfig::default()
            },
        )
        .expect("connect");

        let mut answered = 0usize;
        for (itemset, support) in truth.iter() {
            // A request may exhaust its retries under chaos — that is a
            // visible transport error, which is fine. What is never fine
            // is a *wrong* answer.
            if let Ok(reply) = client.support(itemset.items()) {
                assert_eq!(
                    reply.support, support,
                    "seed {seed:#x}: wrong support for {itemset}"
                );
                assert!(reply.frequent, "seed {seed:#x}: {itemset} not frequent");
                assert!(!reply.stale, "seed {seed:#x}: no rebuild failed");
                answered += 1;
            }
        }
        assert!(
            answered * 2 >= truth.len(),
            "seed {seed:#x}: chaos starved the client ({answered}/{})",
            truth.len()
        );
        assert!(
            !server_plan.events().is_empty() || !client_plan.events().is_empty(),
            "seed {seed:#x}: chaos run injected nothing"
        );

        // The server survived the whole run: a fresh client (high retry
        // budget — the server's fault plan also applies to it) still
        // gets exact answers.
        let mut probe = Client::with_config(
            handle.addr(),
            ClientConfig {
                retry: RetryPolicy {
                    max_retries: 8,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(20),
                    jitter_seed: seed.wrapping_add(2),
                },
                ..ClientConfig::default()
            },
        )
        .expect("clean connect");
        assert_eq!(probe.ping().expect("ping after chaos"), 1);
        let (some_itemset, some_support) = truth.iter().next().unwrap();
        assert_eq!(
            probe
                .support(some_itemset.items())
                .expect("clean support")
                .support,
            some_support
        );
        // `shutdown` is never retried, and the faulty server may tear its
        // ack — stop via the handle instead.
        handle.shutdown();
        builder.stop();
    }
}

// ---------------------------------------------------------------------------
// Graceful degradation: builder panics every rebuild, the service keeps
// answering from the last good snapshot and says so.
// ---------------------------------------------------------------------------

#[test]
fn builder_panics_degrade_to_the_last_good_snapshot() {
    let db = warmup_db();
    let min_support = 6;
    let truth = ConditionalMiner::default().mine(&db, min_support);
    for model in server_models() {
        let builder_plan = FaultPlan::shared(FaultConfig {
            builder_panic: 1.0,
            ..FaultConfig::disabled(0xDEAD)
        });
        // The warmup build is never faulted; every later rebuild panics.
        let (handle, builder, _engine) =
            start(&db, min_support, None, Some(builder_plan.clone()), model);
        let mut client = Client::connect(handle.addr()).expect("connect");

        assert_eq!(client.ping().expect("ping"), 1);
        assert!(!client.support(&[1, 2]).expect("fresh support").stale);

        // Two ingests, both rebuilds panic: flush still acks (with the old
        // generation), the server never hangs.
        for _ in 0..2 {
            let g = client
                .ingest(vec![vec![1, 2, 3], vec![1, 2, 3]], true)
                .expect("ingest must not hang on a failed rebuild");
            assert_eq!(g, Some(1), "failed rebuild keeps the old generation");
        }
        assert!(
            builder_plan.events().iter().any(|e| e.kind == "panic"),
            "builder fault never fired"
        );

        // Degradation is visible: answers carry stale=true but are still the
        // last good snapshot's exact answers.
        for (itemset, support) in truth.iter().take(10) {
            let reply = client.support(itemset.items()).expect("degraded support");
            assert_eq!(reply.support, support, "degraded answer for {itemset}");
            assert!(reply.stale, "degraded answers must be marked stale");
        }
        assert_eq!(client.ping().expect("ping"), 1, "generation unchanged");

        let stats = client.stats().expect("stats");
        assert_eq!(stats.get("stale").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(stats.get("state").and_then(|v| v.as_str()), Some("stale"));
        // Each `ingest wait=true` triggers one or two rebuilds (the batch
        // and the racing flush may coalesce or not), all of which panic.
        let failures = stats
            .get("builder_failures")
            .and_then(|v| v.as_u64())
            .expect("builder_failures in stats");
        assert!((2..=4).contains(&failures), "failures = {failures}");

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

// ---------------------------------------------------------------------------
// Malformed wire input: typed error frames, never a panic or a hang.
// ---------------------------------------------------------------------------

/// Reads one `<len>\n<payload>\n` frame off a raw socket.
fn read_raw_frame(r: &mut impl BufRead) -> Option<String> {
    let mut header = String::new();
    if r.read_line(&mut header).ok()? == 0 {
        return None;
    }
    let len: usize = header.trim().parse().ok()?;
    let mut payload = vec![0u8; len + 1];
    r.read_exact(&mut payload).ok()?;
    payload.pop(); // trailing newline
    String::from_utf8(payload).ok()
}

/// Sends raw bytes, returns the first response frame (None on EOF).
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<String> {
    let mut stream = TcpStream::connect(addr).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).expect("raw write");
    let mut reader = BufReader::new(stream);
    read_raw_frame(&mut reader)
}

fn assert_error_frame(frame: Option<String>, needle: &str, label: &str) {
    let frame = frame.unwrap_or_else(|| panic!("{label}: connection closed with no error frame"));
    assert!(
        frame.contains("\"ok\":false"),
        "{label}: expected a typed error frame, got {frame}"
    );
    assert!(
        frame.contains(needle),
        "{label}: error should mention {needle:?}, got {frame}"
    );
}

#[test]
fn malformed_wire_input_yields_typed_error_frames() {
    for model in server_models() {
        let (handle, builder, engine) = start(&warmup_db(), 6, None, None, model);
        let addr = handle.addr();

        // Non-numeric length prefix: error frame, then the connection closes.
        assert_error_frame(
            raw_exchange(addr, b"notanumber\n{}\n"),
            "invalid frame header",
            "non-numeric length",
        );

        // Length past the frame limit: rejected before allocation.
        let huge = format!("{}\n", 16 * 1024 * 1024 + 1);
        assert_error_frame(
            raw_exchange(addr, huge.as_bytes()),
            "exceeds limit",
            "oversized length",
        );

        // Missing trailing newline after the payload.
        assert_error_frame(
            raw_exchange(addr, b"2\n{}X"),
            "trailing newline",
            "missing frame terminator",
        );

        // Truncated JSON in a well-formed frame: error frame, and the
        // connection *stays usable* — JSON-level errors are recoverable.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let bad = r#"{"op":"sup"#;
        write!(stream, "{}\n{}\n", bad.len(), bad).unwrap();
        let read_stream = stream.try_clone().unwrap();
        let mut reader = BufReader::new(read_stream);
        let frame = read_raw_frame(&mut reader).expect("error frame for truncated JSON");
        assert!(frame.contains("\"ok\":false"), "{frame}");
        // Same connection, now a valid request:
        let ping = r#"{"op":"ping"}"#;
        write!(stream, "{}\n{}\n", ping.len(), ping).unwrap();
        let frame = read_raw_frame(&mut reader).expect("ping after recoverable error");
        assert!(frame.contains("\"ok\":true"), "{frame}");

        // Trailing garbage after a complete JSON value.
        let garbage = r#"{"op":"ping"} extra"#;
        let framed = format!("{}\n{}\n", garbage.len(), garbage);
        assert_error_frame(
            raw_exchange(addr, framed.as_bytes()),
            "trailing characters",
            "trailing garbage",
        );

        // Every case above was counted, and none of them took the server
        // down.
        let errors = engine
            .metrics()
            .protocol_errors
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            errors >= 5,
            "{model:?}: expected >=5 protocol errors, saw {errors}"
        );
        let mut client = Client::connect(addr).expect("server still up");
        assert_eq!(client.ping().expect("ping"), 1);
        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

// ---------------------------------------------------------------------------
// Backpressure and deadlines.
// ---------------------------------------------------------------------------

#[test]
fn connections_past_the_cap_are_refused_with_an_error_frame() {
    let db = warmup_db();
    for model in server_models() {
        let config = BuilderConfig {
            window_capacity: db.len() * 2,
            min_support: 6,
            ..BuilderConfig::default()
        };
        let (engine, builder) = bootstrap(&db, config).expect("bootstrap");
        let handle = serve(
            "127.0.0.1:0",
            engine.clone(),
            Some(builder.queue()),
            ServerConfig {
                server_model: model,
                acceptors: 1,
                reactors: 1,
                max_connections: 1,
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        // First connection holds the only permit.
        let mut first = Client::connect(handle.addr()).expect("first connection");
        assert_eq!(first.ping().expect("ping"), 1);

        // Second is refused with a typed error frame.
        assert_error_frame(
            raw_exchange(handle.addr(), b""),
            "connection capacity",
            "capacity rejection",
        );
        assert!(
            engine
                .metrics()
                .rejected_connections
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );

        // Dropping the first frees the permit; a new client gets in (the
        // permit is released by the handler thread, so poll briefly).
        drop(first);
        let mut again = None;
        for _ in 0..50 {
            if let Ok(mut c) = Client::with_config(
                handle.addr(),
                ClientConfig {
                    retry: RetryPolicy::none(),
                    ..ClientConfig::default()
                },
            ) {
                if c.ping().is_ok() {
                    again = Some(c);
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut again = again.expect("permit was never released");
        again.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}

#[test]
fn a_silent_peer_is_dropped_at_the_read_deadline() {
    let db = warmup_db();
    for model in server_models() {
        let config = BuilderConfig {
            window_capacity: db.len() * 2,
            min_support: 6,
            ..BuilderConfig::default()
        };
        let (engine, builder) = bootstrap(&db, config).expect("bootstrap");
        let handle = serve(
            "127.0.0.1:0",
            engine.clone(),
            None,
            ServerConfig {
                server_model: model,
                acceptors: 1,
                reactors: 1,
                read_deadline: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        // Connect and send nothing: the server must hang up, not park a
        // handler thread forever.
        let stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 64];
        let n = (&stream).read(&mut buf).expect("read until server close");
        assert_eq!(n, 0, "{model:?}: server should close a silent connection");
        assert!(
            engine
                .metrics()
                .timeouts
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1,
            "{model:?}: deadline expiry must be counted"
        );

        handle.shutdown();
        builder.stop();
    }
}

// ---------------------------------------------------------------------------
// Adversarial clients: slowloris, one-byte writes, mid-frame disconnects.
// Both server models must shrug all of them off.
// ---------------------------------------------------------------------------

#[test]
fn slowloris_one_byte_writes_still_get_exact_answers() {
    let db = warmup_db();
    let min_support = 6;
    let truth = ConditionalMiner::default().mine(&db, min_support);
    let (some_itemset, some_support) = truth.iter().next().unwrap();
    let request = plt::serve::Request::Support {
        items: some_itemset.items().to_vec(),
    }
    .to_json()
    .to_string();
    let framed = format!("{}\n{}\n", request.len(), request);

    for model in server_models() {
        let (handle, builder, _engine) = start(&db, min_support, None, None, model);

        // Dribble the frame one byte at a time with small pauses — slow,
        // but inside the read deadline. The server must buffer partial
        // frames and answer exactly.
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        for &b in framed.as_bytes() {
            stream.write_all(&[b]).expect("one-byte write");
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let frame = read_raw_frame(&mut reader).expect("response to slowloris frame");
        assert!(
            frame.contains(&format!("\"support\":{some_support}")),
            "{model:?}: slowloris answer wrong: {frame}"
        );

        // A second dribbled request on the same connection also works —
        // decoder state is per-connection, not per-read.
        for &b in framed.as_bytes() {
            stream.write_all(&[b]).expect("one-byte write");
        }
        let frame = read_raw_frame(&mut reader).expect("second slowloris response");
        assert!(frame.contains("\"ok\":true"), "{model:?}: {frame}");

        handle.shutdown();
        builder.stop();
    }
}

// ---------------------------------------------------------------------------
// Query endpoint under chaos: fault-injected disconnects mid-query and
// read-deadline expiry during a MINE COND frame degrade per DESIGN.md
// §7 — visible transport errors and dropped peers, never a hang and
// never a wrong answer.
// ---------------------------------------------------------------------------

/// Offline ground truth for an itemsets query: the same expression run
/// through plt-query against a source built directly from the window.
fn offline_itemset_rows(db: &[Vec<u32>], min_support: u64, expr: &str) -> Vec<(Vec<u32>, u64)> {
    use plt::core::construct::{construct, ConstructOptions};
    let tree = construct(db, min_support, ConstructOptions::conditional()).unwrap();
    let result = ConditionalMiner::default().mine(db, min_support);
    let src = plt::query::MemSource::build(1, tree, &result, plt::rules::RuleConfig::default());
    let (rows, _) = plt::query::run(expr, &src, &mut plt::obs::Obs::none()).unwrap();
    match rows {
        plt::query::Rows::Itemsets(v) => v
            .into_iter()
            .map(|(set, sup)| (set.items().to_vec(), sup))
            .collect(),
        other => panic!("expected itemset rows for `{expr}`, got {other:?}"),
    }
}

/// Decodes the wire `rows` array of an itemsets answer.
fn wire_itemset_rows(v: &plt::serve::json::Json) -> Vec<(Vec<u32>, u64)> {
    v.get("rows")
        .and_then(|x| x.as_arr())
        .expect("rows array")
        .iter()
        .map(|r| {
            (
                r.get("items").and_then(|x| x.as_items()).expect("items"),
                r.get("support").and_then(|x| x.as_u64()).expect("support"),
            )
        })
        .collect()
}

#[test]
fn fault_injected_queries_disconnect_cleanly_never_wrongly() {
    let db = warmup_db();
    let min_support = 6;
    let exprs = ["TOP 5", "MINE COND {1} TOP 5", "MINE COND {2}"];
    let expected: Vec<Vec<(Vec<u32>, u64)>> = exprs
        .iter()
        .map(|e| offline_itemset_rows(&db, min_support, e))
        .collect();
    assert!(expected.iter().any(|rows| !rows.is_empty()));

    for (seed, model) in CHAOS_SEEDS
        .iter()
        .flat_map(|&s| server_models().into_iter().map(move |m| (s, m)))
    {
        let server_plan = FaultPlan::shared(FaultConfig::chaos(seed));
        let client_plan = FaultPlan::shared(FaultConfig::chaos(seed.wrapping_add(1)));
        let (handle, builder, _engine) =
            start(&db, min_support, Some(server_plan.clone()), None, model);
        let addr = handle.addr();

        // A burst of peers that send a complete query frame and hang up
        // without ever reading the answer — the write side hits a dead
        // socket mid-response.
        let query_frame = {
            let req = plt::serve::Request::Query {
                expr: "MINE COND {1} TOP 5".into(),
            }
            .to_json()
            .to_string();
            format!("{}\n{}\n", req.len(), req)
        };
        for cut in [query_frame.len(), query_frame.len() / 2, 3] {
            for _ in 0..4 {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.write_all(&query_frame.as_bytes()[..cut]).expect("write");
                drop(s); // disconnect mid-query
            }
        }

        // A chaos-faulted client hammers the query endpoint: exhausted
        // retries are visible errors, but every Ok answer is exact.
        let mut client = Client::with_config(
            addr,
            ClientConfig {
                retry: RetryPolicy {
                    max_retries: 8,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(20),
                    jitter_seed: seed,
                },
                fault: Some(client_plan),
                ..ClientConfig::default()
            },
        )
        .expect("connect");
        let mut answered = 0usize;
        for round in 0..12 {
            let i = round % exprs.len();
            if let Ok(v) = client.query(exprs[i]) {
                assert_eq!(
                    wire_itemset_rows(&v),
                    expected[i],
                    "seed {seed:#x} {model:?}: wrong answer for `{}`",
                    exprs[i]
                );
                answered += 1;
            }
        }
        assert!(
            answered >= 4,
            "seed {seed:#x} {model:?}: chaos starved the query client ({answered}/12)"
        );

        // The server survived every disconnect and fault.
        let mut probe = Client::with_config(
            addr,
            ClientConfig {
                retry: RetryPolicy {
                    max_retries: 8,
                    base_backoff: Duration::from_millis(2),
                    max_backoff: Duration::from_millis(20),
                    jitter_seed: seed.wrapping_add(2),
                },
                ..ClientConfig::default()
            },
        )
        .expect("clean connect");
        assert_eq!(probe.ping().expect("ping after chaos"), 1);
        handle.shutdown();
        builder.stop();
    }
}

#[test]
fn deadline_expiry_during_mine_cond_drops_the_peer_not_the_server() {
    let db = warmup_db();
    let min_support = 6;
    let expected = offline_itemset_rows(&db, min_support, "MINE COND {1} TOP 5");
    for model in server_models() {
        let config = BuilderConfig {
            window_capacity: db.len() * 2,
            min_support,
            ..BuilderConfig::default()
        };
        let (engine, builder) = bootstrap(&db, config).expect("bootstrap");
        let handle = serve(
            "127.0.0.1:0",
            engine.clone(),
            None,
            ServerConfig {
                server_model: model,
                acceptors: 1,
                reactors: 1,
                read_deadline: Some(Duration::from_millis(100)),
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        // Half a MINE COND frame, then silence: the read deadline must
        // fire mid-query and close the connection — not park a handler.
        let req = plt::serve::Request::Query {
            expr: "MINE COND {1} TOP 5".into(),
        }
        .to_json()
        .to_string();
        let framed = format!("{}\n{}\n", req.len(), req);
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&framed.as_bytes()[..framed.len() / 2])
            .expect("half frame");
        let mut buf = [0u8; 64];
        let n = (&stream)
            .read(&mut buf)
            .expect("read until server closes the stalled query");
        assert_eq!(n, 0, "{model:?}: stalled MINE COND must be dropped");
        assert!(
            engine
                .metrics()
                .timeouts
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1,
            "{model:?}: deadline expiry must be counted"
        );

        // Degraded for that peer only: a fresh client gets the exact
        // mined answer immediately.
        let mut client = Client::connect(handle.addr()).expect("server still up");
        let v = client.query("MINE COND {1} TOP 5").expect("query");
        assert_eq!(wire_itemset_rows(&v), expected, "{model:?}");

        handle.shutdown();
        builder.stop();
    }
}

#[test]
fn mid_frame_disconnects_leave_the_server_healthy() {
    let db = warmup_db();
    for model in server_models() {
        let (handle, builder, engine) = start(&db, 6, None, None, model);
        let addr = handle.addr();

        // A burst of clients that all hang up mid-frame: after the header,
        // mid-payload, and right before the trailing newline.
        for cut in [
            b"1".as_slice(),
            b"24\n".as_slice(),
            b"24\n{\"op\":\"supp".as_slice(),
        ] {
            for _ in 0..8 {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.write_all(cut).expect("partial write");
                drop(s); // RST or FIN mid-frame
            }
        }

        // Give the server a beat to reap them, then verify health: a
        // clean client still gets exact answers and nothing leaked into
        // the protocol-error path (truncation is a disconnect, not a
        // protocol violation).
        std::thread::sleep(Duration::from_millis(100));
        let mut client = Client::connect(addr).expect("server still accepting");
        assert_eq!(client.ping().expect("ping"), 1, "{model:?}");
        assert_eq!(
            engine
                .metrics()
                .protocol_errors
                .load(std::sync::atomic::Ordering::Relaxed),
            0,
            "{model:?}: mid-frame EOF must not count as a protocol error"
        );

        client.shutdown().expect("shutdown");
        handle.join();
        builder.stop();
    }
}
