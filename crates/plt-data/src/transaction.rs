//! Horizontal database layout: each transaction is the list of items it
//! contains (the layout Apriori, FP-growth and the PLT construction scan).

/// An item identifier. Mirrors `plt_core::Item`; the data layer stays
/// independent of the core crate so either can evolve alone.
pub type Item = u32;

/// A horizontal transaction database.
///
/// Transactions are stored **sorted and duplicate-free**; the constructor
/// normalises arbitrary input. The inner representation is exposed as
/// `&[Vec<Item>]` because that is the concrete type the `Miner` trait
/// consumes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransactionDb {
    transactions: Vec<Vec<Item>>,
}

impl TransactionDb {
    /// Builds a database, sorting and deduplicating every transaction.
    /// Empty transactions are kept (they occur in real exports and the
    /// miners must tolerate them).
    pub fn new(transactions: Vec<Vec<Item>>) -> Self {
        let mut db = TransactionDb { transactions };
        for t in &mut db.transactions {
            t.sort_unstable();
            t.dedup();
        }
        db
    }

    /// Wraps transactions already known to be sorted and duplicate-free.
    /// Debug builds verify the invariant.
    pub fn from_sorted(transactions: Vec<Vec<Item>>) -> Self {
        debug_assert!(transactions
            .iter()
            .all(|t| t.windows(2).all(|w| w[0] < w[1])));
        TransactionDb { transactions }
    }

    /// Number of transactions (including empty ones).
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when the database holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions, in insertion order.
    pub fn transactions(&self) -> &[Vec<Item>] {
        &self.transactions
    }

    /// Consumes the database.
    pub fn into_transactions(self) -> Vec<Vec<Item>> {
        self.transactions
    }

    /// Appends one transaction (normalised).
    pub fn push(&mut self, mut transaction: Vec<Item>) {
        transaction.sort_unstable();
        transaction.dedup();
        self.transactions.push(transaction);
    }

    /// The set of distinct items, sorted.
    pub fn items(&self) -> Vec<Item> {
        let mut items: Vec<Item> = self.transactions.iter().flatten().copied().collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Total number of item occurrences (sum of transaction lengths).
    pub fn total_items(&self) -> usize {
        self.transactions.iter().map(Vec::len).sum()
    }

    /// Absolute support corresponding to a relative threshold in `(0, 1]`,
    /// rounded **up** (an itemset at exactly the threshold is frequent),
    /// with a floor of 1.
    pub fn absolute_support(&self, relative: f64) -> u64 {
        assert!(
            relative > 0.0 && relative <= 1.0,
            "relative support must be in (0, 1]"
        );
        ((relative * self.transactions.len() as f64).ceil() as u64).max(1)
    }

    /// Exact support of an itemset by a full scan — `O(|D| · |T|)` ground
    /// truth for tests and spot checks.
    pub fn support_by_scan(&self, items: &[Item]) -> u64 {
        let mut needle = items.to_vec();
        needle.sort_unstable();
        needle.dedup();
        self.transactions
            .iter()
            .filter(|t| sorted_contains_all(t, &needle))
            .count() as u64
    }

    /// Keeps only the first `n` transactions (workload scaling).
    pub fn truncated(&self, n: usize) -> TransactionDb {
        TransactionDb {
            transactions: self.transactions[..n.min(self.transactions.len())].to_vec(),
        }
    }
}

impl From<Vec<Vec<Item>>> for TransactionDb {
    fn from(transactions: Vec<Vec<Item>>) -> Self {
        TransactionDb::new(transactions)
    }
}

impl<'a> IntoIterator for &'a TransactionDb {
    type Item = &'a Vec<Item>;
    type IntoIter = std::slice::Iter<'a, Vec<Item>>;
    fn into_iter(self) -> Self::IntoIter {
        self.transactions.iter()
    }
}

fn sorted_contains_all(haystack: &[Item], needle: &[Item]) -> bool {
    let mut j = 0;
    for &x in needle {
        loop {
            if j == haystack.len() {
                return false;
            }
            match haystack[j].cmp(&x) {
                std::cmp::Ordering::Less => j += 1,
                std::cmp::Ordering::Equal => {
                    j += 1;
                    break;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_transactions() {
        let db = TransactionDb::new(vec![vec![3, 1, 3, 2], vec![], vec![5, 5]]);
        assert_eq!(db.transactions()[0], vec![1, 2, 3]);
        assert_eq!(db.transactions()[1], Vec::<Item>::new());
        assert_eq!(db.transactions()[2], vec![5]);
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn items_and_totals() {
        let db = TransactionDb::new(vec![vec![1, 2], vec![2, 3], vec![1]]);
        assert_eq!(db.items(), vec![1, 2, 3]);
        assert_eq!(db.total_items(), 5);
        assert!(!db.is_empty());
    }

    #[test]
    fn absolute_support_rounds_up_with_floor() {
        let db = TransactionDb::new(vec![vec![1]; 10]);
        assert_eq!(db.absolute_support(0.25), 3); // ceil(2.5)
        assert_eq!(db.absolute_support(0.2), 2);
        assert_eq!(db.absolute_support(1.0), 10);
        assert_eq!(db.absolute_support(0.001), 1); // floor of 1
    }

    #[test]
    #[should_panic]
    fn absolute_support_rejects_out_of_range() {
        TransactionDb::default().absolute_support(0.0);
    }

    #[test]
    fn support_by_scan_counts_containing_transactions() {
        let db = TransactionDb::new(vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![1, 2, 3, 4],
        ]);
        assert_eq!(db.support_by_scan(&[1, 2]), 3);
        assert_eq!(db.support_by_scan(&[2, 1]), 3); // order-insensitive
        assert_eq!(db.support_by_scan(&[3, 4]), 1);
        assert_eq!(db.support_by_scan(&[5]), 0);
        assert_eq!(db.support_by_scan(&[]), 4); // empty set in every txn
    }

    #[test]
    fn truncated_limits_length() {
        let db = TransactionDb::new(vec![vec![1], vec![2], vec![3]]);
        assert_eq!(db.truncated(2).len(), 2);
        assert_eq!(db.truncated(99).len(), 3);
        assert_eq!(db.truncated(0).len(), 0);
    }

    #[test]
    fn push_normalises() {
        let mut db = TransactionDb::default();
        db.push(vec![9, 1, 9]);
        assert_eq!(db.transactions()[0], vec![1, 9]);
    }

    #[test]
    fn iterates_by_reference() {
        let db = TransactionDb::new(vec![vec![1], vec![2]]);
        let lens: Vec<usize> = (&db).into_iter().map(Vec::len).collect();
        assert_eq!(lens, vec![1, 1]);
    }
}
