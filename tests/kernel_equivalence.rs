//! Differential equivalence for the kernel layer: every `plt-simd`
//! primitive must produce bit-identical results on the scalar and SIMD
//! backends, over adversarial shapes — empty inputs, single elements,
//! lengths straddling the vector lane width, misaligned slices, all-zero
//! and all-max words — and the miners built on the kernels (bitset Eclat,
//! tidset Eclat, the arena engine) must agree on full support maps.
//!
//! On builds without the `simd` feature the Simd backend degrades to
//! scalar and every check passes trivially; the CI matrix runs this suite
//! in both configurations so the AVX2 path is exercised wherever the host
//! supports it.

use std::collections::BTreeSet;

use plt::baselines::{EclatMiner, TidRepr};
use plt::core::kernels::{self, Backend};
use plt::core::miner::Miner;
use plt::ConditionalMiner;
use proptest::prelude::*;

mod common;
use common::{diff_support_maps, support_map};

/// Runs `f` once per backend and returns the two results; callers assert
/// equality. The thread pin is always cleared, even on panic unwind.
fn on_both_backends<R>(mut f: impl FnMut() -> R) -> (R, R) {
    struct Unpin;
    impl Drop for Unpin {
        fn drop(&mut self) {
            kernels::set_thread_backend(None);
        }
    }
    let _unpin = Unpin;
    kernels::set_thread_backend(Some(Backend::Scalar));
    let scalar = f();
    kernels::set_thread_backend(Some(Backend::Simd));
    let simd = f();
    (scalar, simd)
}

/// Lengths around the AVX2 lane widths (8 × u32, 4 × u64) plus the empty,
/// singleton, and bulk cases.
const ADVERSARIAL_LENS: &[usize] = &[
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 10_000,
];

/// Deterministic non-trivial u32 payload.
fn pattern_u32(len: usize) -> Vec<u32> {
    (0..len as u32)
        .map(|i| (i.wrapping_mul(37) % 101) + 1)
        .collect()
}

/// Deterministic non-trivial u64 payload (mixes high and low words).
fn pattern_u64(len: usize) -> Vec<u64> {
    (0..len as u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i << 32))
        .collect()
}

#[test]
fn scan_kernels_agree_across_adversarial_lengths() {
    for &len in ADVERSARIAL_LENS {
        let deltas = pattern_u32(len);
        let (a, b) = on_both_backends(|| {
            let mut out = Vec::new();
            kernels::prefix_sum_into(&deltas, &mut out);
            out
        });
        assert_eq!(a, b, "prefix_sum_into at len {len}");

        // Round trip: delta-encoding the recovered ranks must give the
        // deltas back, on both backends (Lemma 4.1.1 both directions).
        let ranks = a;
        let (a, b) = on_both_backends(|| {
            let mut out = Vec::new();
            kernels::delta_encode_into(&ranks, &mut out);
            out
        });
        assert_eq!(a, b, "delta_encode_into at len {len}");
        assert_eq!(a, deltas, "delta/prefix round trip at len {len}");
    }
}

#[test]
fn gather_kernels_agree_across_adversarial_lengths() {
    for &len in ADVERSARIAL_LENS {
        let values: Vec<u64> = pattern_u32(len).into_iter().map(u64::from).collect();
        // Gather through a permuted id order to exercise non-contiguous
        // access on every lane position.
        let ids: Vec<u32> = (0..len as u32).rev().collect();
        let (a, b) = on_both_backends(|| kernels::sum_gather(&values, &ids));
        assert_eq!(a, b, "sum_gather at len {len}");

        let min = 50;
        let (a, b) = on_both_backends(|| kernels::count_ge(&values, &ids, min));
        assert_eq!(a, b, "count_ge at len {len}");

        let (a, b) = on_both_backends(|| {
            let mut kept = Vec::new();
            kernels::filter_ge_into(&values, &ids, min, &mut kept);
            kept
        });
        assert_eq!(a, b, "filter_ge_into at len {len}");
        // The filtered set is exactly the ids whose value clears the bar.
        let expect: Vec<u32> = ids
            .iter()
            .copied()
            .filter(|&id| values[id as usize] >= min)
            .collect();
        assert_eq!(a, expect, "filter_ge_into semantics at len {len}");
    }
}

#[test]
fn bitset_kernels_agree_across_adversarial_lengths() {
    for &len in ADVERSARIAL_LENS {
        let a_words = pattern_u64(len);
        let b_words: Vec<u64> = pattern_u64(len).iter().map(|w| w.rotate_left(17)).collect();
        let (s, v) = on_both_backends(|| kernels::popcount(&a_words));
        assert_eq!(s, v, "popcount at len {len}");

        let (s, v) = on_both_backends(|| kernels::and_popcount(&a_words, &b_words));
        assert_eq!(s, v, "and_popcount at len {len}");

        let (s, v) = on_both_backends(|| {
            let mut out = Vec::new();
            let count = kernels::and_into(&a_words, &b_words, &mut out);
            (count, out)
        });
        assert_eq!(s, v, "and_into at len {len}");
        assert_eq!(s.0, kernels::popcount(&s.1), "and_into count at len {len}");

        let (s, v) = on_both_backends(|| {
            let mut acc = a_words.clone();
            let count = kernels::and_assign_popcount(&mut acc, &b_words);
            (count, acc)
        });
        assert_eq!(s, v, "and_assign_popcount at len {len}");

        let (s, v) = on_both_backends(|| {
            let mut out = Vec::new();
            let count = kernels::andnot_into(&a_words, &b_words, &mut out);
            (count, out)
        });
        assert_eq!(s, v, "andnot_into at len {len}");
        // a AND NOT b, verified word-by-word against the definition.
        let expect: Vec<u64> = a_words
            .iter()
            .zip(&b_words)
            .map(|(&x, &y)| x & !y)
            .collect();
        assert_eq!(s.1, expect, "andnot_into semantics at len {len}");
    }
}

#[test]
fn bitset_kernels_handle_all_zero_and_all_max_words() {
    for &len in &[4usize, 5, 64, 1_000] {
        let zeros = vec![0u64; len];
        let maxed = vec![u64::MAX; len];
        let (s, v) = on_both_backends(|| {
            (
                kernels::popcount(&zeros),
                kernels::popcount(&maxed),
                kernels::and_popcount(&zeros, &maxed),
                kernels::and_popcount(&maxed, &maxed),
            )
        });
        assert_eq!(s, v, "all-zero/all-max at len {len}");
        assert_eq!(s.0, 0);
        assert_eq!(s.1, 64 * len as u64);
        assert_eq!(s.2, 0);
        assert_eq!(s.3, 64 * len as u64);
        let (s, v) = on_both_backends(|| {
            let mut out = Vec::new();
            kernels::andnot_into(&maxed, &zeros, &mut out)
        });
        assert_eq!(s, v);
        assert_eq!(s, 64 * len as u64, "MAX AND NOT 0 keeps every bit");
    }
}

#[test]
fn kernels_agree_on_misaligned_slices() {
    // Slicing off a prefix shifts the data relative to any 16/32-byte
    // boundary the backing allocation had; the kernels take unaligned
    // loads, so every offset must produce identical answers.
    let deltas = pattern_u32(4_099);
    let words = pattern_u64(1_027);
    let words_b: Vec<u64> = pattern_u64(1_027).iter().map(|w| !w).collect();
    for offset in 1..=7usize {
        let d = &deltas[offset..];
        let (a, b) = on_both_backends(|| {
            let mut out = Vec::new();
            kernels::prefix_sum_into(d, &mut out);
            out
        });
        assert_eq!(a, b, "prefix_sum_into at offset {offset}");

        let w = &words[offset..];
        let wb = &words_b[offset..];
        let (s, v) = on_both_backends(|| kernels::and_popcount(w, wb));
        assert_eq!(s, v, "and_popcount at offset {offset}");
        let (s, v) = on_both_backends(|| {
            let mut out = Vec::new();
            kernels::andnot_into(w, wb, &mut out)
        });
        assert_eq!(s, v, "andnot_into at offset {offset}");
    }
}

#[test]
fn dispatch_matches_the_scalar_oracle_directly() {
    // The dispatch layer must route to code equivalent to the always-
    // compiled scalar module — checked against the oracle itself, not
    // just backend-vs-backend.
    let deltas = pattern_u32(1_000);
    let values: Vec<u64> = pattern_u32(1_000).into_iter().map(u64::from).collect();
    let ids: Vec<u32> = (0..1_000u32).collect();
    let words = pattern_u64(250);
    let words_b = pattern_u64(250);

    let mut expect_ranks = Vec::new();
    kernels::scalar::prefix_sum_into(&deltas, &mut expect_ranks);
    let expect_sum = kernels::scalar::sum_gather(&values, &ids);
    let expect_pop = kernels::scalar::and_popcount(&words, &words_b);

    for backend in [Backend::Scalar, Backend::Simd] {
        kernels::set_thread_backend(Some(backend));
        let mut ranks = Vec::new();
        kernels::prefix_sum_into(&deltas, &mut ranks);
        assert_eq!(ranks, expect_ranks, "{backend:?} vs scalar oracle");
        assert_eq!(
            kernels::sum_gather(&values, &ids),
            expect_sum,
            "{backend:?}"
        );
        assert_eq!(
            kernels::and_popcount(&words, &words_b),
            expect_pop,
            "{backend:?}"
        );
        kernels::set_thread_backend(None);
    }
}

/// Full-support-map agreement between the kernel-backed miners: tidset
/// Eclat, bitset Eclat (forced, regardless of density), and the arena
/// conditional engine.
fn miners_agree(db: &[Vec<u32>], min_support: u64) -> Result<(), String> {
    let arena = ConditionalMiner::default().mine(db, min_support);
    let reference = support_map(&arena);
    let roster: Vec<(&str, EclatMiner)> = vec![
        (
            "eclat-tidset",
            EclatMiner::default().with_repr(TidRepr::Tidset),
        ),
        (
            "eclat-bitset",
            EclatMiner::default().with_repr(TidRepr::Bitset),
        ),
        (
            "declat-bitset",
            EclatMiner::with_diffsets().with_repr(TidRepr::Bitset),
        ),
    ];
    for (name, miner) in roster {
        let got = support_map(&miner.mine(db, min_support));
        if let Some(diff) = diff_support_maps(&reference, &got) {
            return Err(format!(
                "arena vs {name} disagree at min_support {min_support} on db \
                 ({} rows):\n{db:?}\ndiff (reference = arena):\n{diff}",
                db.len(),
            ));
        }
    }
    Ok(())
}

#[test]
fn bitmap_and_tidset_miners_agree_on_generated_workloads() {
    use plt::data::{DenseConfig, DenseGenerator, QuestConfig, QuestGenerator};
    let sparse = QuestGenerator::new(QuestConfig::t5i2(500))
        .generate()
        .into_transactions();
    miners_agree(&sparse, 5).unwrap();
    miners_agree(&sparse, 25).unwrap();
    let dense = DenseGenerator::new(DenseConfig {
        num_transactions: 300,
        num_items: 12,
        density_hi: 0.85,
        density_lo: 0.2,
        seed: 7,
    })
    .generate()
    .into_transactions();
    miners_agree(&dense, 150).unwrap();
    miners_agree(&dense, 60).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random u32 streams: the scan kernels agree between backends at
    /// arbitrary (not just lane-aligned) lengths.
    #[test]
    fn prop_scan_kernels_agree(
        deltas in proptest::collection::vec(any::<u32>(), 0..600),
    ) {
        // Cap the deltas so prefix sums cannot overflow u32.
        let deltas: Vec<u32> = deltas.into_iter().map(|d| d % 1_000).collect();
        let (a, b) = on_both_backends(|| {
            let mut out = Vec::new();
            kernels::prefix_sum_into(&deltas, &mut out);
            out
        });
        prop_assert_eq!(a, b);
    }

    /// Random u64 words: every bitset kernel agrees between backends.
    #[test]
    fn prop_bitset_kernels_agree(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        mask in any::<u64>(),
    ) {
        let b: Vec<u64> = a.iter().map(|w| w ^ mask).collect();
        let (s, v) = on_both_backends(|| {
            let mut and_out = Vec::new();
            let mut not_out = Vec::new();
            (
                kernels::popcount(&a),
                kernels::and_popcount(&a, &b),
                kernels::and_into(&a, &b, &mut and_out),
                kernels::andnot_into(&a, &b, &mut not_out),
                and_out,
                not_out,
            )
        });
        prop_assert_eq!(s, v);
    }

    /// Random support tables: gather/count/filter agree between backends
    /// under permuted id orders.
    #[test]
    fn prop_gather_kernels_agree(
        values in proptest::collection::vec(any::<u64>(), 1..400),
        min in any::<u64>(),
    ) {
        let values: Vec<u64> = values.into_iter().map(|v| v % 10_000).collect();
        let min = min % 10_000;
        let ids: Vec<u32> = (0..values.len() as u32).rev().collect();
        let (a, b) = on_both_backends(|| {
            let mut kept = Vec::new();
            kernels::filter_ge_into(&values, &ids, min, &mut kept);
            (
                kernels::sum_gather(&values, &ids),
                kernels::count_ge(&values, &ids, min),
                kept,
            )
        });
        prop_assert_eq!(a, b);
    }

    /// miners_agree-style sweep: on random skewed databases the bitmap
    /// Eclat, tidset Eclat, and arena engines produce identical support
    /// maps at min_support 1, a mid value, and |D|.
    #[test]
    fn prop_bitmap_tidset_and_arena_miners_agree(
        raw in proptest::collection::vec(
            proptest::collection::btree_set(0u32..300, 1..7),
            3..20,
        ),
        mid_support in 2u64..6,
    ) {
        let db: Vec<Vec<u32>> = raw
            .iter()
            .map(|t| {
                let s: BTreeSet<u32> = t.iter().map(|&x| (x * x) / 300).collect();
                s.into_iter().collect()
            })
            .collect();
        let n = db.len() as u64;
        for min_support in [1, mid_support.min(n), n] {
            let outcome = miners_agree(&db, min_support);
            prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
        }
    }
}
