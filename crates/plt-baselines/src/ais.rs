//! AIS (Agrawal, Imieliński & Swami, SIGMOD'93) — the paper's reference
//! \[1\] and the first frequent-itemset algorithm.
//!
//! AIS is level-wise like Apriori but generates candidates *during* the
//! database pass: for every frontier itemset contained in a transaction,
//! it extends the itemset with the transaction's items that come after the
//! frontier itemset's largest item, counting each extension. The original
//! used an estimation heuristic to decide which frequent itemsets enter
//! the next frontier; this implementation promotes every frequent
//! extension (the conservative choice — identical output, more counting
//! work, which is exactly the inefficiency Apriori's candidate join fixed
//! and benchmarks should show).

use plt_core::hash::{FxHashMap, FxHashSet};
use plt_core::item::{sorted_subset, Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};

/// The AIS miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct AisMiner;

impl Miner for AisMiner {
    fn name(&self) -> &'static str {
        "ais"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);

        // Pass 1: frequent items.
        let mut counts: FxHashMap<Item, Support> = FxHashMap::default();
        for t in transactions {
            for &item in t {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let frequent_items: FxHashSet<Item> = counts
            .iter()
            .filter(|&(_, &s)| s >= min_support)
            .map(|(&i, _)| i)
            .collect();
        let mut frontier: Vec<Vec<Item>> = Vec::new();
        for (&item, &support) in &counts {
            if support >= min_support {
                result.insert(Itemset::from_sorted(vec![item]), support);
                frontier.push(vec![item]);
            }
        }
        frontier.sort();

        // Subsequent passes: extend frontier itemsets inside each
        // transaction.
        while !frontier.is_empty() {
            let mut candidates: FxHashMap<Vec<Item>, Support> = FxHashMap::default();
            for t in transactions {
                for f in &frontier {
                    if !sorted_subset(f, t) {
                        continue;
                    }
                    let last = *f.last().expect("frontier itemsets are non-empty");
                    // Extend with every later frequent item in t.
                    let start = t.partition_point(|&x| x <= last);
                    for &ext in &t[start..] {
                        if frequent_items.contains(&ext) {
                            let mut cand = f.clone();
                            cand.push(ext);
                            *candidates.entry(cand).or_insert(0) += 1;
                        }
                    }
                }
            }
            let mut next: Vec<Vec<Item>> = Vec::new();
            for (cand, support) in candidates {
                if support >= min_support {
                    result.insert(Itemset::from_sorted(cand.clone()), support);
                    next.push(cand);
                }
            }
            next.sort();
            frontier = next;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_brute_force_on_table1() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = AisMiner.mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(AisMiner.mine(&[], 1).is_empty());
        assert!(AisMiner.mine(&table1(), 10).is_empty());
    }

    #[test]
    fn min_support_one() {
        let expect = BruteForceMiner.mine(&table1(), 1);
        let got = AisMiner.mine(&table1(), 1);
        assert_eq!(got.sorted(), expect.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// AIS agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..14, 1..7),
                1..35,
            ),
            min_support in 1u64..5,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = AisMiner.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
