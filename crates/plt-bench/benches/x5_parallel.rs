//! X5 — parallel speedup vs thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_core::miner::Miner;
use plt_parallel::{run_with_threads, ParallelEclatMiner, ParallelPltMiner};

fn bench(c: &mut Criterion) {
    let n = 5_000usize;
    let db = datasets::sparse(n);
    let min_sup = ((0.005 * n as f64).ceil() as u64).max(1);
    let thread_counts = plt_bench::thread_sweep();

    let mut group = c.benchmark_group("x5/plt-parallel");
    group.sample_size(10);
    for &threads in &thread_counts {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &db, |b, db| {
            b.iter(|| run_with_threads(threads, || ParallelPltMiner::default().mine(db, min_sup)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("x5/eclat-parallel");
    group.sample_size(10);
    for &threads in &thread_counts {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &db, |b, db| {
            b.iter(|| run_with_threads(threads, || ParallelEclatMiner.mine(db, min_sup)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
