//! Per-endpoint service metrics: request counters, cache hit/miss
//! counters, and a latency histogram answering p50/p99.
//!
//! Everything is lock-free atomics so the hot read path never blocks on
//! a metrics mutex. Latency is recorded in log₂ microsecond buckets
//! (1µs, 2µs, 4µs, … ~2s); quantiles are answered from the histogram to
//! bucket precision, which is plenty for a `STATS` endpoint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` microseconds; the last bucket absorbs the tail.
const BUCKETS: usize = 22;

/// Latency histogram plus counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    pub requests: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl EndpointStats {
    /// Records one request with its latency; `cache` is `Some(hit?)` for
    /// cacheable endpoints, `None` for ones that bypass the cache.
    pub fn record(&self, latency: Duration, cache: Option<bool>) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match cache {
            Some(true) => self.cache_hits.fetch_add(1, Ordering::Relaxed),
            Some(false) => self.cache_misses.fetch_add(1, Ordering::Relaxed),
            None => 0,
        };
        let micros = latency.as_micros().max(1) as u64;
        let bucket = (63 - micros.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile latency (0 < q ≤ 1), to bucket precision: the
    /// lower bound of the bucket containing the quantile sample. `None`
    /// before any sample.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (BUCKETS - 1))
    }

    fn load(&self) -> (u64, u64, u64) {
        (
            self.requests.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }
}

/// Endpoints tracked by the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Support,
    TopK,
    Extensions,
    Recommend,
    Query,
    Stats,
    Ingest,
    Ping,
}

impl Endpoint {
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Support,
        Endpoint::TopK,
        Endpoint::Extensions,
        Endpoint::Recommend,
        Endpoint::Query,
        Endpoint::Stats,
        Endpoint::Ingest,
        Endpoint::Ping,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Support => "support",
            Endpoint::TopK => "top_k",
            Endpoint::Extensions => "extensions",
            Endpoint::Recommend => "recommend",
            Endpoint::Query => "query",
            Endpoint::Stats => "stats",
            Endpoint::Ingest => "ingest",
            Endpoint::Ping => "ping",
        }
    }
}

/// All service metrics.
/// One [`Metrics::report`] row:
/// `(name, requests, hits, misses, p50µs, p99µs)`.
pub type EndpointReport = (&'static str, u64, u64, u64, Option<u64>, Option<u64>);

#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: [EndpointStats; 8],
    /// Current snapshot generation (gauge, set on publish).
    pub generation: AtomicU64,
    /// Snapshots published over the service lifetime.
    pub publishes: AtomicU64,
    /// Builder rebuilds that panicked and were absorbed (the service kept
    /// answering from the last good snapshot).
    pub builder_failures: AtomicU64,
    /// Frames rejected as malformed (bad header, over limit, bad UTF-8).
    pub protocol_errors: AtomicU64,
    /// Connections dropped for blowing a read/write deadline.
    pub timeouts: AtomicU64,
    /// Connections refused because the server was at capacity.
    pub rejected_connections: AtomicU64,
    /// Snapshot rebuilds completed (successful or absorbed-failure).
    pub rebuilds: AtomicU64,
    /// Cumulative µs spent pushing batch transactions into the window.
    pub rebuild_push_us: AtomicU64,
    /// Cumulative µs spent reranking the window vocabulary.
    pub rebuild_rerank_us: AtomicU64,
    /// Cumulative µs spent mining + building the new snapshot index.
    pub rebuild_snapshot_us: AtomicU64,
    /// Cumulative µs across whole rebuild passes (push → publish).
    pub rebuild_total_us: AtomicU64,
    /// Cumulative dirty shards re-mined across all incremental rebuilds
    /// (divide by `rebuilds` for the mean dirty fraction).
    pub shards_remined: AtomicU64,
    /// Rebuilds answered by the sampled (Toivonen) fast path without
    /// falling back to an exact re-mine.
    pub sampled_rebuilds: AtomicU64,
    /// Sampling attempts across all sampled rebuilds (≥ 1 per rebuild).
    pub sampled_attempts: AtomicU64,
    /// Negative-border violations observed during sampled rebuilds
    /// (each forces a retry or the exact fallback).
    pub sampled_border_violations: AtomicU64,
    /// Sampled rebuilds that exhausted their attempts and fell back to
    /// the exact miner.
    pub sampled_fallbacks: AtomicU64,
    /// Current shard count of the incremental pipeline (gauge).
    pub shard_count: AtomicU64,
    /// Durable-store gauges; all zero (and hidden from `STATS`) when the
    /// service runs without a data directory.
    pub storage: StorageMetrics,
    /// Reactor counters; all zero (and hidden from `STATS`) under the
    /// thread-per-connection model.
    pub reactor: ReactorMetrics,
    /// Query-language counters; all zero (and hidden from `STATS`) until
    /// the first `query` request.
    pub query: QueryStats,
}

/// Counters for the query endpoint, following the [`StorageMetrics`]
/// enabled-flag pattern: `enabled` flips to 1 on the first query, so
/// `stats` omits the block for services that never see one. Plan-cache
/// hit/miss/eviction/invalidation counts live in the plan cache itself
/// (`plt_query::PlanCache::counters`) and are merged into the same
/// `stats` block by the engine.
#[derive(Debug, Default)]
pub struct QueryStats {
    pub enabled: AtomicU64,
    /// Query requests answered (parse errors included).
    pub requests: AtomicU64,
    /// Expressions rejected by the parser/validator.
    pub parse_errors: AtomicU64,
    /// Chosen-plan counters, indexed like
    /// [`plt_query::PhysOp`]: index_point, ext_traverse, rule_scan,
    /// cond_mine, full_scan, sketch_probe.
    pub plans: [AtomicU64; 6],
    /// `APPROX`-tier requests received (`approx.requests`).
    pub approx_requests: AtomicU64,
    /// Approximate answers served from a sketch (`approx.sketch_answers`).
    pub approx_sketch_answers: AtomicU64,
    /// `APPROX`-tier requests honestly answered by an exact operator
    /// (`approx.exact_fallbacks`).
    pub approx_exact_fallbacks: AtomicU64,
}

impl QueryStats {
    /// Records one answered query and the plan that served it
    /// (`None` = the expression never reached planning).
    pub fn record(&self, plan: Option<plt_query::PhysOp>) {
        self.enabled.store(1, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        match plan {
            Some(op) => {
                self.plans[Self::plan_index(op)].fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.parse_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records an `APPROX`-tier request and whether a sketch answered
    /// it (mirrors the `approx.*` obs counters in `plt_query`).
    pub fn record_approx(&self, sketch_answered: bool) {
        self.approx_requests.fetch_add(1, Ordering::Relaxed);
        if sketch_answered {
            self.approx_sketch_answers.fetch_add(1, Ordering::Relaxed);
        } else {
            self.approx_exact_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(requests, sketch_answers, exact_fallbacks)` for `stats`.
    pub fn approx_report(&self) -> (u64, u64, u64) {
        (
            self.approx_requests.load(Ordering::Relaxed),
            self.approx_sketch_answers.load(Ordering::Relaxed),
            self.approx_exact_fallbacks.load(Ordering::Relaxed),
        )
    }

    fn plan_index(op: plt_query::PhysOp) -> usize {
        match op {
            plt_query::PhysOp::IndexPoint => 0,
            plt_query::PhysOp::ExtTraverse => 1,
            plt_query::PhysOp::RuleScan => 2,
            plt_query::PhysOp::CondMine => 3,
            plt_query::PhysOp::FullScan => 4,
            plt_query::PhysOp::SketchProbe => 5,
        }
    }

    /// `(name, count)` rows for the `stats` endpoint's plan breakdown.
    pub fn plan_report(&self) -> [(&'static str, u64); 6] {
        let ops = [
            plt_query::PhysOp::IndexPoint,
            plt_query::PhysOp::ExtTraverse,
            plt_query::PhysOp::RuleScan,
            plt_query::PhysOp::CondMine,
            plt_query::PhysOp::FullScan,
            plt_query::PhysOp::SketchProbe,
        ];
        ops.map(|op| {
            (
                op.as_str(),
                self.plans[Self::plan_index(op)].load(Ordering::Relaxed),
            )
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) != 0
    }
}

/// Counters for the epoll reactor server model, following the
/// [`StorageMetrics`] enabled-flag pattern: `enabled` flips to 1 when a
/// reactor starts, so `stats` omits the block for the thread model.
/// Reactor threads accumulate locally and flush here in batches — these
/// are cheap to read but a beat behind the poll loop.
#[derive(Debug, Default)]
pub struct ReactorMetrics {
    pub enabled: AtomicU64,
    /// Reactor threads running (gauge).
    pub reactors: AtomicU64,
    /// epoll events handled (`reactor.events`).
    pub events: AtomicU64,
    /// Connection state-machine transitions (`conn.state_transitions`).
    pub state_transitions: AtomicU64,
    /// Connections accepted and dispatched to a reactor.
    pub accepted: AtomicU64,
    /// Connections currently registered across all reactors (gauge).
    pub active_connections: AtomicU64,
    /// Connections refused with a `shed` response (`shed.count`) —
    /// reactor budget or accept backlog full. Also counted into
    /// [`Metrics::rejected_connections`] so both models share one
    /// refusal counter.
    pub shed_connections: AtomicU64,
    /// Poll-loop latency (one sample per `epoll_wait` round trip).
    pub poll: EndpointStats,
}

impl ReactorMetrics {
    pub fn mark_enabled(&self) {
        self.enabled.store(1, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) != 0
    }
}

/// Gauges mirrored from [`plt_store::StoreStats`] after every apply and
/// checkpoint. `enabled` flips to 1 the first time they are recorded, so
/// the `stats` endpoint can omit the block for in-memory services.
#[derive(Debug, Default)]
pub struct StorageMetrics {
    pub enabled: AtomicU64,
    pub wal_bytes: AtomicU64,
    pub wal_records: AtomicU64,
    pub segments: AtomicU64,
    pub segment_bytes: AtomicU64,
    pub compactions: AtomicU64,
    pub checkpoints: AtomicU64,
    pub spills: AtomicU64,
    pub segment_lookups: AtomicU64,
    pub recovery_ms: AtomicU64,
    pub replayed_records: AtomicU64,
}

impl StorageMetrics {
    /// Overwrites every gauge from a store-stats snapshot.
    pub fn record(&self, s: &plt_store::StoreStats) {
        self.enabled.store(1, Ordering::Relaxed);
        self.wal_bytes.store(s.wal_bytes, Ordering::Relaxed);
        self.wal_records.store(s.wal_records, Ordering::Relaxed);
        self.segments.store(s.segments, Ordering::Relaxed);
        self.segment_bytes.store(s.segment_bytes, Ordering::Relaxed);
        self.compactions.store(s.compactions, Ordering::Relaxed);
        self.checkpoints.store(s.checkpoints, Ordering::Relaxed);
        self.spills.store(s.spills, Ordering::Relaxed);
        self.segment_lookups
            .store(s.segment_lookups, Ordering::Relaxed);
        self.recovery_ms.store(s.recovery_ms, Ordering::Relaxed);
        self.replayed_records
            .store(s.replayed_records, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) != 0
    }
}

impl Metrics {
    pub fn endpoint(&self, e: Endpoint) -> &EndpointStats {
        &self.endpoints[match e {
            Endpoint::Support => 0,
            Endpoint::TopK => 1,
            Endpoint::Extensions => 2,
            Endpoint::Recommend => 3,
            Endpoint::Query => 4,
            Endpoint::Stats => 5,
            Endpoint::Ingest => 6,
            Endpoint::Ping => 7,
        }]
    }

    /// Records one completed rebuild pass with its per-phase durations.
    /// Cumulative sums (not histograms): rebuilds are rare relative to
    /// reads, and the `stats` endpoint divides by `rebuilds` for means.
    pub fn record_rebuild(
        &self,
        push: Duration,
        rerank: Duration,
        snapshot: Duration,
        total: Duration,
    ) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        self.rebuild_push_us
            .fetch_add(push.as_micros() as u64, Ordering::Relaxed);
        self.rebuild_rerank_us
            .fetch_add(rerank.as_micros() as u64, Ordering::Relaxed);
        self.rebuild_snapshot_us
            .fetch_add(snapshot.as_micros() as u64, Ordering::Relaxed);
        self.rebuild_total_us
            .fetch_add(total.as_micros() as u64, Ordering::Relaxed);
    }

    /// Records the outcome of one sampled (Toivonen) rebuild.
    pub fn record_sampled(&self, outcome: &plt_approx::SamplingOutcome) {
        self.sampled_attempts
            .fetch_add(outcome.attempts as u64, Ordering::Relaxed);
        self.sampled_border_violations
            .fetch_add(outcome.border_violations as u64, Ordering::Relaxed);
        if outcome.fell_back {
            self.sampled_fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.sampled_rebuilds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(sampled_rebuilds, attempts, border_violations, fallbacks)`.
    pub fn sampled_report(&self) -> (u64, u64, u64, u64) {
        (
            self.sampled_rebuilds.load(Ordering::Relaxed),
            self.sampled_attempts.load(Ordering::Relaxed),
            self.sampled_border_violations.load(Ordering::Relaxed),
            self.sampled_fallbacks.load(Ordering::Relaxed),
        )
    }

    /// Records the dirty-shard work of one incremental rebuild.
    pub fn record_shards(&self, dirty: u64, total: u64) {
        self.shards_remined.fetch_add(dirty, Ordering::Relaxed);
        self.shard_count.store(total, Ordering::Relaxed);
    }

    /// Snapshot of the rebuild-phase accumulators:
    /// `(rebuilds, push_us, rerank_us, snapshot_us, total_us)`.
    pub fn rebuild_report(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.rebuilds.load(Ordering::Relaxed),
            self.rebuild_push_us.load(Ordering::Relaxed),
            self.rebuild_rerank_us.load(Ordering::Relaxed),
            self.rebuild_snapshot_us.load(Ordering::Relaxed),
            self.rebuild_total_us.load(Ordering::Relaxed),
        )
    }

    /// Snapshot of every endpoint's counters:
    /// `(name, requests, hits, misses, p50µs, p99µs)`.
    pub fn report(&self) -> Vec<EndpointReport> {
        Endpoint::ALL
            .iter()
            .map(|&e| {
                let s = self.endpoint(e);
                let (req, hit, miss) = s.load();
                (
                    e.as_str(),
                    req,
                    hit,
                    miss,
                    s.quantile_micros(0.50),
                    s.quantile_micros(0.99),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.endpoint(Endpoint::Support)
            .record(Duration::from_micros(10), Some(true));
        m.endpoint(Endpoint::Support)
            .record(Duration::from_micros(10), Some(false));
        m.endpoint(Endpoint::Stats)
            .record(Duration::from_micros(5), None);
        let report = m.report();
        let support = report.iter().find(|r| r.0 == "support").unwrap();
        assert_eq!((support.1, support.2, support.3), (2, 1, 1));
        let stats = report.iter().find(|r| r.0 == "stats").unwrap();
        assert_eq!((stats.1, stats.2, stats.3), (1, 0, 0));
    }

    #[test]
    fn quantiles_track_the_distribution() {
        let s = EndpointStats::default();
        assert_eq!(s.quantile_micros(0.5), None);
        // 99 fast samples at ~8µs, 1 slow at ~1024µs.
        for _ in 0..99 {
            s.record(Duration::from_micros(9), None);
        }
        s.record(Duration::from_micros(1500), None);
        let p50 = s.quantile_micros(0.50).unwrap();
        let p99 = s.quantile_micros(0.99).unwrap();
        assert_eq!(p50, 8); // bucket [8,16)
        assert!(p99 <= 16, "p99 {p99}");
        let p100 = s.quantile_micros(1.0).unwrap();
        assert_eq!(p100, 1024); // bucket [1024,2048)
    }

    #[test]
    fn sub_microsecond_lands_in_first_bucket() {
        let s = EndpointStats::default();
        s.record(Duration::from_nanos(10), None);
        assert_eq!(s.quantile_micros(1.0), Some(1));
    }

    #[test]
    fn exact_power_of_two_latencies_land_in_their_own_bucket() {
        // Bucket i covers [2^i, 2^(i+1)): an exactly-2^i sample must
        // report 2^i, not the bucket below.
        for exp in 0..10u32 {
            let s = EndpointStats::default();
            s.record(Duration::from_micros(1u64 << exp), None);
            assert_eq!(s.quantile_micros(1.0), Some(1u64 << exp), "2^{exp}µs");
        }
    }

    #[test]
    fn one_microsecond_boundary() {
        let s = EndpointStats::default();
        s.record(Duration::from_micros(1), None);
        s.record(Duration::from_nanos(999), None); // clamps up to 1µs
        assert_eq!(s.quantile_micros(0.5), Some(1));
        assert_eq!(s.quantile_micros(1.0), Some(1));
        assert_eq!(s.requests.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn tail_bucket_saturates() {
        // Anything past the last bucket's lower bound (2^21 µs ≈ 2.1s)
        // lands in the saturating tail, including absurd durations.
        let s = EndpointStats::default();
        s.record(Duration::from_secs(3), None);
        s.record(Duration::from_secs(3600), None);
        assert_eq!(s.quantile_micros(0.5), Some(1u64 << 21));
        assert_eq!(s.quantile_micros(1.0), Some(1u64 << 21));
    }

    #[test]
    fn quantile_edge_fractions() {
        let s = EndpointStats::default();
        for _ in 0..10 {
            s.record(Duration::from_micros(4), None);
        }
        // Tiny q still selects the first occupied bucket; q = 1.0 the last.
        assert_eq!(s.quantile_micros(0.0001), Some(4));
        assert_eq!(s.quantile_micros(1.0), Some(4));
    }

    #[test]
    fn service_counters_default_to_zero() {
        let m = Metrics::default();
        assert_eq!(m.builder_failures.load(Ordering::Relaxed), 0);
        assert_eq!(m.protocol_errors.load(Ordering::Relaxed), 0);
        assert_eq!(m.timeouts.load(Ordering::Relaxed), 0);
        assert_eq!(m.rejected_connections.load(Ordering::Relaxed), 0);
        assert_eq!(m.rebuild_report(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn query_stats_flip_enabled_and_count_plans() {
        let m = Metrics::default();
        assert!(!m.query.is_enabled());
        m.query.record(Some(plt_query::PhysOp::IndexPoint));
        m.query.record(Some(plt_query::PhysOp::IndexPoint));
        m.query.record(Some(plt_query::PhysOp::CondMine));
        m.query.record(None); // parse error
        assert!(m.query.is_enabled());
        assert_eq!(m.query.requests.load(Ordering::Relaxed), 4);
        assert_eq!(m.query.parse_errors.load(Ordering::Relaxed), 1);
        let report = m.query.plan_report();
        assert_eq!(report[0], ("index_point", 2));
        assert_eq!(report[3], ("cond_mine", 1));
        assert_eq!(report[4], ("full_scan", 0));
        // The query endpoint has latency stats like any other.
        m.endpoint(Endpoint::Query)
            .record(Duration::from_micros(3), Some(false));
        let r = m.report();
        let q = r.iter().find(|r| r.0 == "query").unwrap();
        assert_eq!((q.1, q.2, q.3), (1, 0, 1));
    }

    #[test]
    fn rebuild_phases_accumulate() {
        let m = Metrics::default();
        m.record_rebuild(
            Duration::from_micros(10),
            Duration::from_micros(20),
            Duration::from_micros(300),
            Duration::from_micros(340),
        );
        m.record_rebuild(
            Duration::from_micros(5),
            Duration::from_micros(5),
            Duration::from_micros(100),
            Duration::from_micros(115),
        );
        assert_eq!(m.rebuild_report(), (2, 15, 25, 400, 455));
    }
}
