//! End-to-end pipelines across crates: generate → construct → compress →
//! mine → condense → rules, with every stage cross-validated against
//! ground-truth database scans.

use plt::closed::{closed_itemsets, maximal_itemsets};
use plt::compress::CompressedPlt;
use plt::core::conditional::extract_conditional;
use plt::core::construct::{construct, ConstructOptions};
use plt::core::miner::Miner;
use plt::data::{BasketConfig, BasketGenerator, QuestConfig, QuestGenerator, TransactionDb};
use plt::rules::{generate_rules, RuleConfig};
use plt::ConditionalMiner;

#[test]
fn rules_are_verifiable_against_raw_scans() {
    let generator = BasketGenerator::new(BasketConfig {
        num_baskets: 1_500,
        ..Default::default()
    });
    let db = generator.generate();
    let min_support = db.absolute_support(0.03);
    let result = ConditionalMiner::default().mine(db.transactions(), min_support);
    let rules = generate_rules(
        &result,
        RuleConfig {
            min_confidence: 0.6,
        },
    );
    assert!(!rules.is_empty(), "basket data must induce rules");
    for rule in rules.iter().take(50) {
        let union = rule.antecedent.union(&rule.consequent);
        let sup_union = db.support_by_scan(union.items());
        let sup_ante = db.support_by_scan(rule.antecedent.items());
        assert_eq!(sup_union, rule.support, "rule {rule}");
        let conf = sup_union as f64 / sup_ante as f64;
        assert!((conf - rule.confidence).abs() < 1e-12, "rule {rule}");
        assert!(conf >= 0.6);
    }
}

#[test]
fn compressed_plt_is_a_faithful_store() {
    let db = QuestGenerator::new(QuestConfig::t5i2(1_200))
        .generate()
        .into_transactions();
    let min_support = 12;
    let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
    let compressed = CompressedPlt::from_plt(&plt);

    // Mining the decompressed PLT gives the same answer as mining the
    // original.
    let miner = ConditionalMiner::default();
    // Qualified: `Miner` is also in scope, and both traits have a `mine`.
    let from_original = plt::core::Mine::mine_plt(&miner, &plt);
    let from_roundtrip = plt::core::Mine::mine_plt(&miner, &compressed.to_plt());
    assert_eq!(from_original.sorted(), from_roundtrip.sorted());

    // The sum index returns exactly the conditional extraction of the
    // uncompressed structure (pre-fold).
    for j in 1..=plt.ranking().len() as u32 {
        let mut via_index: Vec<_> = compressed
            .vectors_with_sum(j)
            .into_iter()
            .filter_map(|(v, f)| v.parent().map(|p| (p, f)))
            .collect();
        via_index.sort();
        let (_, mut via_extract, _) = extract_conditional(&plt, j);
        via_extract.sort();
        // extract_conditional merges duplicates through Plt; merge ours.
        let merge = |v: Vec<(plt::PositionVector, u64)>| {
            let mut m = std::collections::BTreeMap::new();
            for (k, f) in v {
                *m.entry(k).or_insert(0) += f;
            }
            m
        };
        assert_eq!(merge(via_index), merge(via_extract), "rank {j}");
    }
}

#[test]
fn closed_and_maximal_reconstruct_the_frequency_family() {
    let db = BasketGenerator::new(BasketConfig {
        num_baskets: 800,
        ..Default::default()
    })
    .generate();
    let min_support = db.absolute_support(0.04);
    let all = ConditionalMiner::default().mine(db.transactions(), min_support);
    let closed = closed_itemsets(&all);
    let maximal = maximal_itemsets(&all);

    assert!(maximal.len() <= closed.len());
    assert!(closed.len() <= all.len());

    // Every frequent itemset is a subset of some maximal itemset.
    let maximal_sets: Vec<_> = maximal.iter().map(|(s, _)| s.clone()).collect();
    for (itemset, _) in all.iter() {
        assert!(
            maximal_sets.iter().any(|m| itemset.is_subset_of(m)),
            "{itemset} not covered by any maximal set"
        );
    }

    // Every frequent itemset's support equals the max support among the
    // closed supersets containing it (the closure property).
    for (itemset, support) in all.iter() {
        let closure_sup = closed
            .iter()
            .filter(|(c, _)| itemset.is_subset_of(c))
            .map(|(_, s)| s)
            .max()
            .expect("some closed superset exists");
        assert_eq!(closure_sup, support, "{itemset}");
    }
}

#[test]
fn mining_results_match_raw_scans_on_a_sample() {
    let db = QuestGenerator::new(QuestConfig::t5i2(700)).generate();
    let tdb = TransactionDb::from_sorted(db.transactions().to_vec());
    let min_support = 10;
    let result = ConditionalMiner::default().mine(db.transactions(), min_support);
    assert!(!result.is_empty());
    for (itemset, support) in result.iter().take(200) {
        assert_eq!(
            tdb.support_by_scan(itemset.items()),
            support,
            "{itemset} support mismatch vs raw scan"
        );
    }
}
