//! # plt — Positional Lexicographic Tree
//!
//! Facade crate re-exporting the whole PLT workspace: the core structure
//! and miners ([`core`]), data substrates ([`data`]), baseline miners
//! ([`baselines`]), parallel mining ([`parallel`]), compressed storage
//! ([`compress`]), association-rule generation ([`rules`]),
//! closed/maximal mining ([`closed`]), streaming maintenance
//! ([`stream`]), sharded incremental mining ([`shard`]), durable
//! segmented storage ([`store`]), the online query service ([`serve`]),
//! the query language and planner ([`query`]), the approximate
//! answering tier ([`approx`]) and the observability layer ([`obs`]).
//!
//! See the workspace `README.md` for a guided tour and `DESIGN.md` for the
//! paper-to-module map.

pub use plt_approx as approx;
pub use plt_baselines as baselines;
pub use plt_closed as closed;
pub use plt_compress as compress;
pub use plt_core as core;
pub use plt_data as data;
pub use plt_obs as obs;
pub use plt_parallel as parallel;
pub use plt_query as query;
pub use plt_rules as rules;
pub use plt_serve as serve;
pub use plt_shard as shard;
pub use plt_store as store;
pub use plt_stream as stream;

pub use plt_core::{
    ArenaPool, CondEngine, ConditionalMiner, Itemset, Mine, Miner, MiningResult, Plt,
    PositionVector, RankPolicy, Support, TopDownMiner,
};
pub use plt_shard::{MineStrategy, MinerBuilder, ShardedPipeline};
