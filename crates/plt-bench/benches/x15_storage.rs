//! X15 — durable-store costs. Three measurements over the same data
//! directory: recovery that replays the whole WAL (no checkpoint),
//! recovery from a checkpoint manifest (empty tail), and cold
//! `support_of` point lookups with a 2-shard resident budget so answers
//! come from mmap segments through the block index rather than a merged
//! in-memory snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_core::{ConditionalMiner, Miner};
use plt_shard::{Delta, ShardConfig};
use plt_store::{DurableOptions, DurablePipeline};

fn bench(c: &mut Criterion) {
    let n = 2_000;
    let min_sup = 20;
    let config = ShardConfig {
        shard_count: 16,
        min_support: min_sup,
        ..ShardConfig::default()
    };
    let db = datasets::sparse(n);
    let dir = std::env::temp_dir().join(format!("plt-bench-x15-crit-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Ingest once, journaling every batch with no checkpoints: the
    // first recovery replays the entire ingest from the WAL.
    let journal_only = DurableOptions {
        checkpoint_every: None,
        ..DurableOptions::default()
    };
    let mut pipeline = DurablePipeline::open(&dir, config, journal_only).unwrap();
    for chunk in db.chunks(64) {
        pipeline.apply(Delta::add(chunk.to_vec())).unwrap();
    }
    drop(pipeline);

    let mut group = c.benchmark_group("x15/sparse");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("recover", "wal_tail"), |b| {
        b.iter(|| {
            DurablePipeline::open(&dir, config, journal_only)
                .unwrap()
                .len()
        })
    });

    // Checkpoint once; recovery is then manifest + window, no replay.
    let mut pipeline = DurablePipeline::open(&dir, config, journal_only).unwrap();
    pipeline.checkpoint().unwrap();
    drop(pipeline);
    group.bench_function(BenchmarkId::new("recover", "checkpoint"), |b| {
        b.iter(|| {
            DurablePipeline::open(&dir, config, journal_only)
                .unwrap()
                .len()
        })
    });

    // Cold reads: 2 resident shards, no merged snapshot — every lookup
    // routes through a resident fragment or an mmap segment.
    let cold_options = DurableOptions {
        resident_shards: Some(2),
        materialize_merged: false,
        checkpoint_every: None,
        ..DurableOptions::default()
    };
    let pipeline = DurablePipeline::open(&dir, config, cold_options).unwrap();
    let family: Vec<Vec<u32>> = ConditionalMiner::default()
        .mine(&db, min_sup)
        .iter()
        .map(|(itemset, _)| itemset.items().to_vec())
        .collect();
    group.bench_with_input(
        BenchmarkId::new("cold_support_of", family.len()),
        &family,
        |b, family| {
            b.iter(|| {
                let mut acc = 0u64;
                for items in family {
                    acc += pipeline.support_of(items).unwrap_or(0);
                }
                acc
            })
        },
    );
    group.finish();
    drop(pipeline);
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
