//! # plt-parallel — partitioned parallel mining
//!
//! The paper's closing claim (§6): "PLT provides partition criteria that
//! makes it easy to partition the mining process into several separate
//! tasks; each can be accomplished separately." This crate realises that
//! claim on shared-memory parallelism (ICPP being a parallel-processing
//! venue):
//!
//! * [`projection`] — one pass over the PLT yields, for every item `j`,
//!   its support and its conditional database (the prefix of every stored
//!   vector at `j`'s position). These per-item units are completely
//!   independent.
//! * [`ParallelPltMiner`] — fans the units out over a Rayon thread pool;
//!   each task runs the sequential conditional miner
//!   ([`plt_core::conditional::mine_conditional`]) on its own projection
//!   and results are merged (they are disjoint: task `j` produces exactly
//!   the itemsets whose highest-ranked item is `j`).
//! * [`construct`] — parallel two-scan PLT construction: both the item
//!   count and the vector insertion scans fold per-chunk partial
//!   structures that merge associatively.
//! * [`ParallelEclatMiner`] — a parallel baseline for the X5 speedup
//!   comparison, fanning out the first-level equivalence classes.
//! * [`par_all_subset_supports`] — the top-down pass as an embarrassingly
//!   parallel per-vector expansion.
//! * [`par_generate_rules`] — ap-genrules fanned out per frequent itemset.
//! * [`run_with_threads`] — pins work to a pool of an exact size, for the
//!   thread-scaling sweeps.

pub mod construct;
pub mod eclat;
pub mod miner;
pub mod projection;
pub mod rules;
pub mod topdown;

pub use construct::par_construct;
pub use eclat::ParallelEclatMiner;
pub use miner::ParallelPltMiner;
pub use projection::{project_all, Projections};
pub use rules::par_generate_rules;
pub use topdown::{par_all_subset_supports, ParallelTopDownMiner};

/// Runs `f` on a dedicated Rayon pool with exactly `threads` workers.
/// All `par_iter` work spawned inside `f` stays on that pool — the knob
/// experiment X5 turns.
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_with_threads_controls_pool_size() {
        let n = run_with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
        let n = run_with_threads(1, rayon::current_num_threads);
        assert_eq!(n, 1);
    }
}
