//! Physical operators and the naive full-scan oracle.
//!
//! Every operator in [`execute`] must return results **identical** to
//! [`NaiveExecutor`] — same rows, same order, same tie-breaking — which
//! is what `tests/query_equivalence.rs` proves by differential testing.
//! Canonical row orders:
//!
//! * itemsets: support descending, then size ascending, then
//!   lexicographic ascending;
//! * rules: `plt_rules::sort_rules` order (confidence desc, lift desc,
//!   support desc, antecedent/consequent lex).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

use plt_core::error::{PltError, Result};
use plt_core::item::{Item, Itemset, Support};
use plt_rules::Rule;
use plt_shard::MinerBuilder;

use crate::ast::{CmpOp, Field, PatElem, Pred, Query, QueryKind};
use crate::plan::PhysOp;
use crate::source::Source;

/// Metadata accompanying an approximate answer: the executed operator
/// guarantees the reported support is within `error_bound` of truth.
/// Exact operators return `None` in its place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxMeta {
    /// Guaranteed absolute error bound, in transactions.
    pub error_bound: Support,
}

/// Result rows of one query.
#[derive(Debug, Clone, PartialEq)]
pub enum Rows {
    /// `SUPPORT OF` — one exact answer.
    Support {
        items: Vec<Item>,
        support: Support,
        frequent: bool,
    },
    /// `TOP` / `MINE COND` — itemsets in canonical order.
    Itemsets(Vec<(Itemset, Support)>),
    /// `RULES` — rules in standard quality order.
    Rules(Vec<Rule>),
}

impl Rows {
    /// The row-kind tag used in wire responses.
    pub fn kind(&self) -> &'static str {
        match self {
            Rows::Support { .. } => "support",
            Rows::Itemsets(_) => "itemsets",
            Rows::Rules(_) => "rules",
        }
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        match self {
            Rows::Support { .. } => 1,
            Rows::Itemsets(v) => v.len(),
            Rows::Rules(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Evaluates an itemset predicate. Rule-only fields (`confidence`,
/// `lift`) never pass here — the parser rejects them in itemset
/// queries, and a hand-built AST using them simply matches nothing.
pub fn eval_itemset(pred: &Pred, itemset: &Itemset, support: Support, n: u64) -> bool {
    match pred {
        Pred::And(a, b) => {
            eval_itemset(a, itemset, support, n) && eval_itemset(b, itemset, support, n)
        }
        Pred::Or(a, b) => {
            eval_itemset(a, itemset, support, n) || eval_itemset(b, itemset, support, n)
        }
        Pred::Not(p) => !eval_itemset(p, itemset, support, n),
        Pred::Cmp { field, op, value } => match field {
            Field::Support => op.holds(support, value.as_support(n)),
            Field::Size => op.holds(itemset.len() as f64, value.as_f64()),
            Field::Confidence | Field::Lift => false,
        },
        Pred::PrefixLike(pattern) => {
            let items = itemset.items();
            items.len() >= pattern.len()
                && pattern.iter().zip(items).all(|(pat, &item)| match pat {
                    PatElem::Item(want) => *want == item,
                    PatElem::Any => true,
                })
        }
        Pred::Contains(required) => required.iter().all(|&i| itemset.contains(i)),
    }
}

/// Evaluates a rule predicate. Itemset-only atoms (`size`, `prefix
/// LIKE`, `contains`) never pass here for the same reason as above.
pub fn eval_rule(pred: &Pred, rule: &Rule, n: u64) -> bool {
    match pred {
        Pred::And(a, b) => eval_rule(a, rule, n) && eval_rule(b, rule, n),
        Pred::Or(a, b) => eval_rule(a, rule, n) || eval_rule(b, rule, n),
        Pred::Not(p) => !eval_rule(p, rule, n),
        Pred::Cmp { field, op, value } => match field {
            Field::Support => op.holds(rule.support, value.as_support(n)),
            Field::Confidence => op.holds(rule.confidence, value.as_f64()),
            Field::Lift => op.holds(rule.lift, value.as_f64()),
            Field::Size => false,
        },
        Pred::PrefixLike(_) | Pred::Contains(_) => false,
    }
}

/// Sorts itemset rows into the canonical order.
pub fn canonical_sort(rows: &mut [(Itemset, Support)]) {
    rows.sort_by(|a, b| {
        b.1.cmp(&a.1)
            .then(a.0.len().cmp(&b.0.len()))
            .then(a.0.cmp(&b.0))
    });
}

/// The full-scan oracle: answers every query by brute force over the
/// complete ranked array / rule list / PLT, with no index shortcuts.
/// This is both the `FullScan` physical operator and the ground truth
/// the differential tests compare every other operator against.
pub struct NaiveExecutor;

impl NaiveExecutor {
    /// Runs `q` (already normalized) against `src` by exhaustive scan.
    pub fn run(src: &dyn Source, q: &Query) -> Rows {
        let n = src.stats().num_transactions;
        match &q.kind {
            QueryKind::Support { items } => {
                // Count matching vectors directly off the PLT: the sum of
                // frequencies of vectors whose rank sets cover the items.
                let plt = src.plt();
                let ranks: Option<Vec<u32>> =
                    items.iter().map(|&i| plt.ranking().rank(i)).collect();
                let support = match ranks {
                    None => 0, // an unranked item appears in no stored vector
                    Some(want) => plt
                        .iter()
                        .filter(|(pv, _)| {
                            let have = pv.ranks();
                            want.iter().all(|r| have.contains(r))
                        })
                        .map(|(_, entry)| entry.freq)
                        .sum(),
                };
                Rows::Support {
                    items: items.clone(),
                    support,
                    frequent: support >= src.stats().min_support && !items.is_empty(),
                }
            }
            QueryKind::Top { k, filter } => {
                let rows = src
                    .ranked()
                    .iter()
                    .filter(|(set, sup)| match filter {
                        Some(p) => eval_itemset(p, set, *sup, n),
                        None => true,
                    })
                    .take(*k)
                    .cloned()
                    .collect();
                Rows::Itemsets(rows)
            }
            QueryKind::Rules { filter, k } => {
                let rows = src
                    .rules()
                    .iter()
                    .filter(|r| match filter {
                        Some(p) => eval_rule(p, r, n),
                        None => true,
                    })
                    .take(k.unwrap_or(usize::MAX))
                    .cloned()
                    .collect();
                Rows::Rules(rows)
            }
            QueryKind::MineCond { cond, k } => {
                let rows = src
                    .ranked()
                    .iter()
                    .filter(|(set, _)| cond.iter().all(|&i| set.contains(i)))
                    .take(k.unwrap_or(usize::MAX))
                    .cloned()
                    .collect();
                Rows::Itemsets(rows)
            }
        }
    }
}

/// Executes `q` (already normalized) with the given physical operator.
/// Returns the rows plus, for approximate operators, the metadata
/// stating the guaranteed error bound (`None` from exact operators).
///
/// Returns `PltError::Query` if the operator does not apply to this
/// query shape (the planner never produces such a pairing; the error
/// protects the test-only force hook).
pub fn execute(op: PhysOp, q: &Query, src: &dyn Source) -> Result<(Rows, Option<ApproxMeta>)> {
    let exact = |rows: Rows| (rows, None);
    match (op, &q.kind) {
        (PhysOp::FullScan, _) => Ok(exact(NaiveExecutor::run(src, q))),
        (PhysOp::IndexPoint, QueryKind::Support { items }) => {
            let (support, frequent) = src.support_of(items);
            Ok(exact(Rows::Support {
                items: items.clone(),
                support,
                frequent,
            }))
        }
        (PhysOp::SketchProbe, QueryKind::Support { items }) => {
            let Some(sketch) = src.sketch() else {
                return Err(PltError::Query {
                    message: "sketch_probe needs a source with an attached sketch".into(),
                });
            };
            let (support, error_bound) = sketch.estimate(items);
            Ok((
                Rows::Support {
                    items: items.clone(),
                    support,
                    frequent: support >= src.stats().min_support && !items.is_empty(),
                },
                Some(ApproxMeta { error_bound }),
            ))
        }
        (PhysOp::ExtTraverse, QueryKind::Top { k, filter }) => {
            let seeds: Vec<(Itemset, Support)> = src
                .extensions_of(&[])
                .into_iter()
                .map(|(item, sup)| (Itemset::from_sorted(vec![item]), sup))
                .collect();
            Ok(exact(Rows::Itemsets(ext_traverse(
                src,
                seeds,
                filter.as_ref(),
                *k,
            ))))
        }
        (PhysOp::ExtTraverse, QueryKind::MineCond { cond, k }) => {
            let (support, frequent) = src.support_of(cond);
            if !frequent {
                // Anti-monotone: no frequent superset of an infrequent set.
                return Ok(exact(Rows::Itemsets(Vec::new())));
            }
            let seed = (Itemset::new(cond.clone()), support);
            Ok(exact(Rows::Itemsets(ext_traverse(
                src,
                vec![seed],
                None,
                k.unwrap_or(usize::MAX),
            ))))
        }
        (PhysOp::RuleScan, QueryKind::Rules { filter, k }) => {
            Ok(exact(Rows::Rules(rule_scan(src, filter.as_ref(), *k))))
        }
        (PhysOp::CondMine, QueryKind::MineCond { cond, k }) => {
            Ok(exact(Rows::Itemsets(cond_mine(src, cond, *k)?)))
        }
        (op, _) => Err(PltError::Query {
            message: format!("operator {} does not apply to `{q}`", op.as_str()),
        }),
    }
}

/// Best-first traversal of the extension index (Lemma 4.1.3) with top-k
/// early termination.
///
/// The frontier is a max-heap on support. Children are supersets, so
/// their support never exceeds their parent's — nodes therefore pop in
/// non-increasing support order. Every popped node is expanded (a node
/// failing the filter can still have passing descendants), but only
/// passing nodes are collected. Once `k` rows are collected and the
/// popped support drops *strictly* below the k-th collected support, no
/// remaining node can enter the top k (equal-support nodes still
/// compete on the size/lex tie-break, hence the strict comparison) and
/// the traversal stops. The collected rows are then canonically sorted
/// to settle ties and truncated to `k`.
fn ext_traverse(
    src: &dyn Source,
    seeds: Vec<(Itemset, Support)>,
    filter: Option<&Pred>,
    k: usize,
) -> Vec<(Itemset, Support)> {
    if k == 0 {
        return Vec::new();
    }
    let n = src.stats().num_transactions;
    let mut heap: BinaryHeap<(Support, Reverse<Itemset>)> = BinaryHeap::new();
    let mut visited: HashSet<Itemset> = HashSet::new();
    for (set, sup) in seeds {
        if visited.insert(set.clone()) {
            heap.push((sup, Reverse(set)));
        }
    }
    let mut passing: Vec<(Itemset, Support)> = Vec::new();
    while let Some((sup, Reverse(set))) = heap.pop() {
        if passing.len() >= k && sup < passing[k - 1].1 {
            break;
        }
        let passes = match filter {
            Some(p) => eval_itemset(p, &set, sup, n),
            None => true,
        };
        if passes {
            passing.push((set.clone(), sup));
        }
        for (item, child_sup) in src.extensions_of(set.items()) {
            let child = set.with(item);
            if visited.insert(child.clone()) {
                heap.push((child_sup, Reverse(child)));
            }
        }
    }
    canonical_sort(&mut passing);
    passing.truncate(k);
    passing
}

/// Ordered scan of the rule index with early termination.
///
/// Rules are stored confidence-descending, so a `confidence >=/> c`
/// conjunct at the top level of the filter turns into a stop condition:
/// once the scan passes below `c`, no later rule can satisfy that
/// conjunct. Collection also stops as soon as `k` rows pass (the scan
/// order *is* the output order).
fn rule_scan(src: &dyn Source, filter: Option<&Pred>, k: Option<usize>) -> Vec<Rule> {
    let n = src.stats().num_transactions;
    let bound = filter.and_then(confidence_bound);
    let k = k.unwrap_or(usize::MAX);
    let mut out = Vec::new();
    for rule in src.rules() {
        if let Some((c, strict)) = bound {
            if rule.confidence < c || (strict && rule.confidence <= c) {
                break;
            }
        }
        let passes = match filter {
            Some(p) => eval_rule(p, rule, n),
            None => true,
        };
        if passes {
            out.push(rule.clone());
            if out.len() >= k {
                break;
            }
        }
    }
    out
}

/// Extracts a confidence lower bound `(c, strict)` from the top-level
/// AND chain of a rule filter, if one exists. Only `>=`/`>` atoms
/// directly under ANDs count — anything under OR/NOT is not a safe
/// stop condition.
pub(crate) fn confidence_bound(pred: &Pred) -> Option<(f64, bool)> {
    match pred {
        Pred::And(a, b) => match (confidence_bound(a), confidence_bound(b)) {
            (Some(x), Some(y)) => Some(if x.0 > y.0 || (x.0 == y.0 && x.1) {
                x
            } else {
                y
            }),
            (x, y) => x.or(y),
        },
        Pred::Cmp {
            field: Field::Confidence,
            op: CmpOp::Ge,
            value,
        } => Some((value.as_f64(), false)),
        Pred::Cmp {
            field: Field::Confidence,
            op: CmpOp::Gt,
            value,
        } => Some((value.as_f64(), true)),
        _ => None,
    }
}

/// On-demand conditional mining of the sub-PLT rooted at `cond`
/// (the paper's conditional-database step, run at query time).
///
/// The conditional database is every stored vector whose rank set
/// covers `cond`, expanded by its frequency. For any itemset `Y` over
/// that database, `support_cond(Y) = support(Y ∪ cond)`, so re-mining
/// it at the global threshold yields exactly the frequent supersets of
/// `cond` (different `Y` collapsing to the same `Y ∪ cond` carry equal
/// supports, so the dedup below is lossless).
fn cond_mine(src: &dyn Source, cond: &[Item], k: Option<usize>) -> Result<Vec<(Itemset, Support)>> {
    let plt = src.plt();
    let min_support = src.stats().min_support;
    let Some(cond_ranks) = cond
        .iter()
        .map(|&i| plt.ranking().rank(i))
        .collect::<Option<Vec<u32>>>()
    else {
        return Ok(Vec::new()); // an unranked item is infrequent: nothing to mine
    };
    let mut db: Vec<Vec<Item>> = Vec::new();
    for (pv, entry) in plt.iter() {
        let have = pv.ranks();
        if cond_ranks.iter().all(|r| have.contains(r)) {
            let tx = plt.ranking().items_for_ranks(&have);
            for _ in 0..entry.freq {
                db.push(tx.clone());
            }
        }
    }
    if (db.len() as u64) < min_support {
        return Ok(Vec::new()); // cond itself is infrequent
    }
    let miner = MinerBuilder::new().min_support(min_support).build_miner();
    let result = miner.mine(&db, min_support);
    let cond_set = Itemset::new(cond.to_vec());
    let mut merged: BTreeMap<Itemset, Support> = BTreeMap::new();
    for (itemset, support) in result.iter() {
        let mut union = itemset.items().to_vec();
        for &c in cond_set.items() {
            if !itemset.contains(c) {
                union.push(c);
            }
        }
        merged.insert(Itemset::new(union), support);
    }
    let mut rows: Vec<(Itemset, Support)> = merged.into_iter().collect();
    canonical_sort(&mut rows);
    rows.truncate(k.unwrap_or(usize::MAX));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Num;
    use crate::source::tests::{mem_source, mem_source_with_sketch};

    fn assert_op_matches_naive(src: &dyn Source, q: &Query, op: PhysOp) {
        let naive = NaiveExecutor::run(src, q);
        let (got, meta) = execute(op, q, src).unwrap();
        assert_eq!(got, naive, "{} disagrees with naive on `{q}`", op.as_str());
        assert_eq!(meta, None, "exact operator {} returned meta", op.as_str());
    }

    #[test]
    fn index_point_matches_naive_support() {
        let src = mem_source(2);
        for items in [vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 2, 3], vec![99]] {
            let q = Query::exact(QueryKind::Support { items });
            assert_op_matches_naive(&src, &q, PhysOp::IndexPoint);
        }
    }

    #[test]
    fn sketch_probe_answers_within_its_stated_bound() {
        let src = mem_source_with_sketch(2, 8, 0.2);
        for items in [vec![0], vec![0, 1], vec![0, 1, 2], vec![0, 2, 3], vec![99]] {
            let q = Query::approx(QueryKind::Support { items }, None);
            let naive = NaiveExecutor::run(&src, &q);
            let (got, meta) = execute(PhysOp::SketchProbe, &q, &src).unwrap();
            let meta = meta.expect("sketch probe must state a bound");
            let (
                Rows::Support { support: exact, .. },
                Rows::Support {
                    support: approx, ..
                },
            ) = (&naive, &got)
            else {
                panic!("support rows expected");
            };
            assert!(
                exact.abs_diff(*approx) <= meta.error_bound,
                "estimate {approx} of {exact} exceeds bound {}",
                meta.error_bound
            );
        }
        // No sketch attached → typed error, not a panic.
        let bare = mem_source(2);
        let q = Query::approx(QueryKind::Support { items: vec![0] }, None);
        let err = execute(PhysOp::SketchProbe, &q, &bare).unwrap_err();
        assert!(err.to_string().contains("attached sketch"));
    }

    #[test]
    fn ext_traverse_matches_naive_top() {
        let src = mem_source(2);
        let filters = [
            None,
            Some(Pred::Cmp {
                field: Field::Size,
                op: CmpOp::Ge,
                value: Num::Abs(2),
            }),
            Some(Pred::And(
                Box::new(Pred::Cmp {
                    field: Field::Support,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.4),
                }),
                Box::new(Pred::Contains(vec![1])),
            )),
            Some(Pred::PrefixLike(vec![PatElem::Any, PatElem::Item(1)])),
            Some(Pred::Not(Box::new(Pred::Contains(vec![2])))),
        ];
        for k in [1, 2, 3, 10, 100] {
            for filter in &filters {
                let q = Query::exact(QueryKind::Top {
                    k,
                    filter: filter.clone(),
                });
                assert_op_matches_naive(&src, &q, PhysOp::ExtTraverse);
            }
        }
    }

    #[test]
    fn mine_cond_operators_match_naive() {
        let src = mem_source(2);
        for cond in [vec![0], vec![1], vec![0, 1], vec![2, 3], vec![5], vec![99]] {
            for k in [None, Some(1), Some(3), Some(100)] {
                let q = Query::exact(QueryKind::MineCond {
                    cond: cond.clone(),
                    k,
                });
                assert_op_matches_naive(&src, &q, PhysOp::ExtTraverse);
                assert_op_matches_naive(&src, &q, PhysOp::CondMine);
            }
        }
    }

    #[test]
    fn rule_scan_matches_naive() {
        let src = mem_source(2);
        let filters = [
            None,
            Some(Pred::Cmp {
                field: Field::Confidence,
                op: CmpOp::Ge,
                value: Num::Frac(0.8),
            }),
            Some(Pred::And(
                Box::new(Pred::Cmp {
                    field: Field::Confidence,
                    op: CmpOp::Gt,
                    value: Num::Frac(0.7),
                }),
                Box::new(Pred::Cmp {
                    field: Field::Lift,
                    op: CmpOp::Gt,
                    value: Num::Frac(1.0),
                }),
            )),
            // OR means no safe early-stop; must still agree.
            Some(Pred::Or(
                Box::new(Pred::Cmp {
                    field: Field::Confidence,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.9),
                }),
                Box::new(Pred::Cmp {
                    field: Field::Support,
                    op: CmpOp::Ge,
                    value: Num::Abs(3),
                }),
            )),
        ];
        for k in [None, Some(1), Some(2), Some(50)] {
            for filter in &filters {
                let q = Query::exact(QueryKind::Rules {
                    filter: filter.clone(),
                    k,
                });
                assert_op_matches_naive(&src, &q, PhysOp::RuleScan);
            }
        }
    }

    #[test]
    fn mismatched_operator_is_a_typed_error() {
        let src = mem_source(2);
        let q = Query::exact(QueryKind::Support { items: vec![0] });
        let err = execute(PhysOp::RuleScan, &q, &src).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
    }

    #[test]
    fn confidence_bound_extraction() {
        let ge = Pred::Cmp {
            field: Field::Confidence,
            op: CmpOp::Ge,
            value: Num::Frac(0.8),
        };
        let gt = Pred::Cmp {
            field: Field::Confidence,
            op: CmpOp::Gt,
            value: Num::Frac(0.9),
        };
        assert_eq!(confidence_bound(&ge), Some((0.8, false)));
        let and = Pred::And(Box::new(ge.clone()), Box::new(gt.clone()));
        assert_eq!(confidence_bound(&and), Some((0.9, true)));
        // Under OR or NOT the bound is not safe.
        let or = Pred::Or(Box::new(ge.clone()), Box::new(gt));
        assert_eq!(confidence_bound(&or), None);
        assert_eq!(confidence_bound(&Pred::Not(Box::new(ge))), None);
    }
}
