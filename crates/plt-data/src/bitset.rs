//! Bitset TID database: one fixed-width `u64`-word bitmap per item.
//!
//! The vertical layout in [`crate::vertical`] stores each item's TIDs as a
//! sorted `Vec<u32>`; intersecting two lists is a branchy sorted merge.
//! On dense data the same sets are much smaller — and the intersection
//! much faster — as bitmaps: `support(X ∪ Y) = popcount(bits(X) AND
//! bits(Y))`, one wide AND per 64 transactions with no branches at all.
//! This is the classic vertical-bitmap rendering of Eclat (Zaki, TKDE
//! 2000 — the paper's reference \[12\]); the AND+popcount runs through
//! `plt-simd`, so it picks up the AVX2 backend when the `simd` feature
//! and the CPU allow.
//!
//! [`BitsetTidDb::prefer_bitmaps`] is the density heuristic: bitmaps win
//! exactly when their fixed `⌈n/64⌉`-word footprint undercuts the sorted
//! TID vectors they replace, which happens once average item support
//! exceeds one TID per 16 transactions (4 bytes/TID vs 1 bit/transaction,
//! i.e. density 1/16 ≈ 6.25%).

use crate::transaction::Item;
use crate::vertical::{Tid, VerticalDb};

/// Per-item TID bitmaps over a fixed transaction universe.
#[derive(Debug, Clone, Default)]
pub struct BitsetTidDb {
    /// `(item, first word index)` pairs, sorted by item; every row spans
    /// `words_per_row` words in `words`.
    index: Vec<(Item, usize)>,
    /// Concatenated row storage.
    words: Vec<u64>,
    /// Words per row: `⌈num_transactions / 64⌉`.
    words_per_row: usize,
    num_transactions: usize,
}

impl BitsetTidDb {
    /// Builds bitmaps for every column of a vertical database.
    pub fn from_vertical(db: &VerticalDb) -> BitsetTidDb {
        let n = db.num_transactions();
        let words_per_row = n.div_ceil(64);
        let mut out = BitsetTidDb {
            index: Vec::with_capacity(db.num_items()),
            words: Vec::with_capacity(words_per_row * db.num_items()),
            words_per_row,
            num_transactions: n,
        };
        for (item, tids) in db.columns() {
            let start = out.words.len();
            out.words.resize(start + words_per_row, 0);
            let row = &mut out.words[start..];
            for &tid in tids {
                row[tid as usize / 64] |= 1u64 << (tid % 64);
            }
            out.index.push((item, start));
        }
        out
    }

    /// Number of transactions the bitmaps span (the universe size).
    pub fn num_transactions(&self) -> usize {
        self.num_transactions
    }

    /// Number of items with a bitmap row.
    pub fn num_items(&self) -> usize {
        self.index.len()
    }

    /// Words in every row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The bitmap row of `item` (empty slice when absent).
    pub fn row(&self, item: Item) -> &[u64] {
        match self.index.binary_search_by_key(&item, |e| e.0) {
            Ok(i) => {
                let start = self.index[i].1;
                &self.words[start..start + self.words_per_row]
            }
            Err(_) => &[],
        }
    }

    /// Iterates `(item, row)` in item order.
    pub fn rows(&self) -> impl Iterator<Item = (Item, &[u64])> {
        self.index
            .iter()
            .map(move |&(item, start)| (item, &self.words[start..start + self.words_per_row]))
    }

    /// Support of a single item (popcount of its row).
    pub fn item_support(&self, item: Item) -> u64 {
        plt_simd::popcount(self.row(item))
    }

    /// Support of an itemset: popcount of the AND across all member rows,
    /// folded into one reusable scratch row. Returns 0 for the empty set
    /// or any item without a row.
    pub fn support(&self, items: &[Item], scratch: &mut Vec<u64>) -> u64 {
        let Some((&first, rest)) = items.split_first() else {
            return 0;
        };
        let first_row = self.row(first);
        if first_row.is_empty() {
            return 0;
        }
        if rest.is_empty() {
            return plt_simd::popcount(first_row);
        }
        if rest.len() == 1 {
            let row = self.row(rest[0]);
            if row.is_empty() {
                return 0;
            }
            // The common pairwise probe skips the scratch entirely.
            return plt_simd::and_popcount(first_row, row);
        }
        scratch.clear();
        scratch.extend_from_slice(first_row);
        let mut ones = 0;
        for &item in rest {
            let row = self.row(item);
            if row.is_empty() {
                return 0;
            }
            ones = plt_simd::and_assign_popcount(scratch, row);
            if ones == 0 {
                return 0;
            }
        }
        ones
    }

    /// Bytes the bitmaps occupy (`num_items × words_per_row × 8`).
    pub fn bitmap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The density heuristic: should an Eclat-style miner use bitmaps
    /// instead of sorted TID vectors for this workload? True when the
    /// total bitmap footprint of the `num_rows` frequent items is smaller
    /// than the `total_tids` 4-byte TIDs they would otherwise store.
    pub fn prefer_bitmaps(num_transactions: usize, num_rows: usize, total_tids: usize) -> bool {
        let words_per_row = num_transactions.div_ceil(64);
        num_rows * words_per_row * 8 < total_tids * 4
    }

    /// Decodes a bitmap row back to sorted TIDs (test/debug helper).
    pub fn to_tids(row: &[u64]) -> Vec<Tid> {
        let mut out = Vec::new();
        for (wi, &w) in row.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((wi as u32) * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TransactionDb;

    fn db() -> TransactionDb {
        TransactionDb::new(vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![3]])
    }

    #[test]
    fn rows_match_vertical_tid_lists() {
        let v = VerticalDb::from_horizontal(&db());
        let b = BitsetTidDb::from_vertical(&v);
        assert_eq!(b.num_transactions(), 4);
        assert_eq!(b.num_items(), 3);
        assert_eq!(b.words_per_row(), 1);
        for (item, tids) in v.columns() {
            assert_eq!(BitsetTidDb::to_tids(b.row(item)), tids, "item {item}");
            assert_eq!(b.item_support(item), tids.len() as u64);
        }
        assert!(b.row(9).is_empty());
    }

    #[test]
    fn support_matches_intersection_counts() {
        let v = VerticalDb::from_horizontal(&db());
        let b = BitsetTidDb::from_vertical(&v);
        let mut scratch = Vec::new();
        assert_eq!(b.support(&[1, 2], &mut scratch), 2);
        assert_eq!(b.support(&[2, 3], &mut scratch), 2);
        assert_eq!(b.support(&[1, 3], &mut scratch), 1);
        assert_eq!(b.support(&[3], &mut scratch), 3);
        assert_eq!(b.support(&[], &mut scratch), 0);
        assert_eq!(b.support(&[1, 9], &mut scratch), 0);
    }

    #[test]
    fn density_heuristic_crossover() {
        // 640 transactions → 10 words (80 bytes) per row. A row is worth
        // a bitmap once it replaces > 20 TIDs (80 bytes / 4).
        assert!(BitsetTidDb::prefer_bitmaps(640, 1, 21));
        assert!(!BitsetTidDb::prefer_bitmaps(640, 1, 20));
        // Sparse: 100 items at 1% density of 6400 txns — tidsets win.
        assert!(!BitsetTidDb::prefer_bitmaps(6400, 100, 6400));
        // Dense: 16 items at 50% density of 640 txns — bitmaps win.
        assert!(BitsetTidDb::prefer_bitmaps(640, 16, 16 * 320));
    }

    #[test]
    fn wide_universe_spans_words() {
        let mut txns: Vec<Vec<Item>> = (0..200).map(|_| vec![7]).collect();
        txns[0].push(8);
        txns[130].push(8);
        let v = VerticalDb::from_horizontal(&TransactionDb::new(txns));
        let b = BitsetTidDb::from_vertical(&v);
        assert_eq!(b.words_per_row(), 4);
        assert_eq!(b.item_support(7), 200);
        let mut scratch = Vec::new();
        assert_eq!(b.support(&[7, 8], &mut scratch), 2);
        assert_eq!(BitsetTidDb::to_tids(b.row(8)), vec![0, 130]);
    }
}
