//! Generation-aware reader pool: requests pin one snapshot for their
//! whole lifetime across background swaps.
//!
//! The pool holds the *current* value behind a slot; [`ReaderPool::pin`]
//! hands out a [`ReadGuard`] that keeps that slot's value alive until the
//! guard drops, however many [`swap`](ReaderPool::swap)s happen in
//! between. Two invariants, both property-tested:
//!
//! 1. **No mixed-generation views.** A guard dereferences to exactly the
//!    value that was current when it was pinned; its reported generation
//!    never changes mid-request.
//! 2. **No early frees.** A swapped-out value stays alive while any guard
//!    pins it, and is dropped as soon as the last guard releases (plain
//!    `Arc` reachability — the pool keeps no reference to old slots).
//!
//! The hot path is engineered for readers: the common case (`pin` while
//! no swap happened) is one `RwLock` read held for an `Arc` clone — and
//! reactor workers skip even that with a [`ReaderCache`], which
//! revalidates against a lock-free generation gauge and only touches the
//! lock after a swap. Pin accounting is two relaxed atomics per request,
//! surfaced in the `stats` endpoint as `reader_pool.active_pins`.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One published generation: the value plus its pin ledger.
#[derive(Debug)]
struct Slot<T> {
    value: Arc<T>,
    generation: u64,
    /// Guards handed out against this slot.
    pinned: AtomicU64,
    /// Guards released. `pinned - released` = requests in flight on this
    /// generation.
    released: AtomicU64,
}

/// Pins one generation's value for the lifetime of a request.
///
/// Dereferences to `T`. Cloning is deliberately not offered: a request
/// pins once and carries the guard; a second pin would be a second
/// request.
#[derive(Debug)]
pub struct ReadGuard<T> {
    slot: Arc<Slot<T>>,
}

impl<T> ReadGuard<T> {
    /// The generation this guard pinned (fixed at pin time).
    pub fn generation(&self) -> u64 {
        self.slot.generation
    }

    /// A clone of the pinned value's `Arc` — for callers that need to
    /// move the value somewhere the guard cannot follow. The guard keeps
    /// its own pin either way.
    pub fn value_arc(&self) -> Arc<T> {
        self.slot.value.clone()
    }
}

impl<T> Deref for ReadGuard<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.slot.value
    }
}

impl<T> Drop for ReadGuard<T> {
    fn drop(&mut self) {
        self.slot.released.fetch_add(1, Ordering::Relaxed);
    }
}

/// Per-worker cache of the current slot, for readers that must not take
/// the pool lock on every request (the reactor's poll loop). Revalidated
/// against the pool's lock-free generation gauge on every
/// [`ReaderPool::pin_with`]; stale caches refresh through the lock once
/// per swap, not once per request.
#[derive(Debug, Default)]
pub struct ReaderCache<T> {
    slot: Option<Arc<Slot<T>>>,
}

impl<T> ReaderCache<T> {
    pub fn new() -> ReaderCache<T> {
        ReaderCache { slot: None }
    }
}

/// The swap point: readers pin, a writer publishes.
#[derive(Debug)]
pub struct ReaderPool<T> {
    current: RwLock<Arc<Slot<T>>>,
    /// Mirror of the current slot's generation, readable without the
    /// lock — the staleness check for [`ReaderCache`]s.
    generation: AtomicU64,
    /// Swaps performed over the pool's lifetime.
    swaps: AtomicU64,
}

impl<T> ReaderPool<T> {
    /// A pool serving `value` as `generation`.
    pub fn new(value: Arc<T>, generation: u64) -> ReaderPool<T> {
        ReaderPool {
            current: RwLock::new(Arc::new(Slot {
                value,
                generation,
                pinned: AtomicU64::new(0),
                released: AtomicU64::new(0),
            })),
            generation: AtomicU64::new(generation),
            swaps: AtomicU64::new(0),
        }
    }

    /// Pins the current generation. The lock is held only for the `Arc`
    /// clone; the guard then lives lock-free.
    pub fn pin(&self) -> ReadGuard<T> {
        let slot = self.current.read().unwrap().clone();
        slot.pinned.fetch_add(1, Ordering::Relaxed);
        ReadGuard { slot }
    }

    /// Pins through a per-worker cache: when no swap happened since the
    /// cache last refreshed (the common case), this is entirely
    /// lock-free — one relaxed load against the generation gauge.
    pub fn pin_with(&self, cache: &mut ReaderCache<T>) -> ReadGuard<T> {
        let current_generation = self.generation.load(Ordering::Acquire);
        let fresh = matches!(&cache.slot, Some(slot) if slot.generation == current_generation);
        if !fresh {
            cache.slot = Some(self.current.read().unwrap().clone());
        }
        let slot = cache.slot.as_ref().unwrap().clone();
        slot.pinned.fetch_add(1, Ordering::Relaxed);
        ReadGuard { slot }
    }

    /// Publishes `value` as `generation`. In-flight guards keep their
    /// pinned slot; the swapped-out value is freed by `Arc` reachability
    /// once its last guard (and any caches still holding it) release.
    pub fn swap(&self, value: Arc<T>, generation: u64) {
        let slot = Arc::new(Slot {
            value,
            generation,
            pinned: AtomicU64::new(0),
            released: AtomicU64::new(0),
        });
        // Order matters for cache revalidation: install the slot first,
        // then advance the gauge — a cache that sees the new generation
        // must find the new slot behind the lock.
        *self.current.write().unwrap() = slot;
        self.generation.store(generation, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// The current generation (lock-free gauge).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Swaps performed so far.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Requests currently holding a guard on the *current* generation.
    /// (Guards on swapped-out generations are invisible here by design —
    /// their slot is no longer reachable from the pool.)
    pub fn active_pins(&self) -> u64 {
        let slot = self.current.read().unwrap().clone();
        slot.pinned.load(Ordering::Relaxed) - slot.released.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn guards_pin_their_generation_across_swaps() {
        let pool = ReaderPool::new(Arc::new("g1"), 1);
        let guard = pool.pin();
        pool.swap(Arc::new("g2"), 2);
        assert_eq!(*guard, "g1");
        assert_eq!(guard.generation(), 1);
        assert_eq!(pool.generation(), 2);
        assert_eq!(*pool.pin(), "g2");
    }

    #[test]
    fn old_values_drop_when_the_last_guard_releases() {
        let old = Arc::new(vec![1u8, 2, 3]);
        let pool = ReaderPool::new(old.clone(), 1);
        let a = pool.pin();
        let b = pool.pin();
        pool.swap(Arc::new(vec![9]), 2);
        // Pool no longer references the old value; two guards do.
        assert!(Arc::strong_count(&old) >= 2);
        drop(a);
        assert!(Arc::strong_count(&old) >= 2, "b still pins");
        drop(b);
        assert_eq!(Arc::strong_count(&old), 1, "only the test's handle left");
    }

    #[test]
    fn cache_revalidates_after_a_swap() {
        let pool = ReaderPool::new(Arc::new(10u64), 1);
        let mut cache = ReaderCache::new();
        assert_eq!(*pool.pin_with(&mut cache), 10);
        assert_eq!(*pool.pin_with(&mut cache), 10); // cached, lock-free
        pool.swap(Arc::new(20), 2);
        let guard = pool.pin_with(&mut cache);
        assert_eq!(*guard, 20);
        assert_eq!(guard.generation(), 2);
    }

    #[test]
    fn active_pins_track_current_generation_guards() {
        let pool = ReaderPool::new(Arc::new(()), 1);
        assert_eq!(pool.active_pins(), 0);
        let a = pool.pin();
        let b = pool.pin();
        assert_eq!(pool.active_pins(), 2);
        drop(a);
        assert_eq!(pool.active_pins(), 1);
        // A swap starts a fresh ledger; the old guard is invisible.
        pool.swap(Arc::new(()), 2);
        assert_eq!(pool.active_pins(), 0);
        drop(b);
        assert_eq!(pool.active_pins(), 0);
    }

    /// A value that knows which generation built it, so a guard can be
    /// audited for mixed-generation views.
    #[derive(Debug)]
    struct Tagged {
        generation: u64,
        payload: Vec<u64>,
    }

    fn tagged(generation: u64) -> Arc<Tagged> {
        Arc::new(Tagged {
            generation,
            payload: (0..8).map(|i| generation * 100 + i).collect(),
        })
    }

    /// One step of the interleaving: swap in a new generation, pin a new
    /// guard (possibly through one of two worker caches), or release an
    /// existing guard (by index, modulo what's alive). Decoded from a
    /// `(tag, arg)` pair because the vendored proptest has no `prop_oneof`.
    #[derive(Debug, Clone)]
    enum Step {
        Swap,
        Pin { via_cache: Option<u8> },
        Release(u8),
    }

    fn decode_step((tag, arg): (u8, u8)) -> Step {
        match tag {
            0 => Step::Swap,
            1 => Step::Pin { via_cache: None },
            2 => Step::Pin {
                via_cache: Some(arg % 2),
            },
            _ => Step::Release(arg),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Under arbitrary interleavings of swaps, pins (direct and
        /// through worker caches), and releases:
        ///
        /// * a pinned request never observes a mixed-generation view —
        ///   the guard's generation, the tagged value's generation, and
        ///   every payload element agree at every step;
        /// * a swapped-out value stays alive exactly while guards (or a
        ///   stale worker cache) reference it, and its `Arc` count drops
        ///   to the test's own handle once they are gone.
        #[test]
        fn prop_no_mixed_views_and_no_early_frees(raw_steps in proptest::collection::vec((0u8..4, 0u8..8), 1..64)) {
            let steps: Vec<Step> = raw_steps.into_iter().map(decode_step).collect();
            let mut generation = 1u64;
            let values: std::cell::RefCell<Vec<Arc<Tagged>>> =
                std::cell::RefCell::new(vec![tagged(generation)]);
            let pool = ReaderPool::new(values.borrow()[0].clone(), generation);
            let mut caches = [ReaderCache::new(), ReaderCache::new()];
            let mut guards: Vec<ReadGuard<Tagged>> = Vec::new();

            let audit = |guards: &[ReadGuard<Tagged>]| {
                for g in guards {
                    // Invariant 1: the view is internally consistent.
                    prop_assert_eq!(g.generation(), g.generation);
                    for (i, &v) in g.payload.iter().enumerate() {
                        prop_assert_eq!(v, g.generation * 100 + i as u64);
                    }
                }
                Ok(())
            };

            for step in steps {
                match step {
                    Step::Swap => {
                        generation += 1;
                        let v = tagged(generation);
                        values.borrow_mut().push(v.clone());
                        pool.swap(v, generation);
                    }
                    Step::Pin { via_cache } => {
                        let guard = match via_cache {
                            Some(c) => pool.pin_with(&mut caches[c as usize]),
                            None => pool.pin(),
                        };
                        // A fresh pin always sees the latest generation.
                        prop_assert_eq!(guard.generation(), generation);
                        prop_assert_eq!(guard.generation, generation);
                        guards.push(guard);
                    }
                    Step::Release(i) => {
                        if !guards.is_empty() {
                            let i = i as usize % guards.len();
                            guards.swap_remove(i);
                        }
                    }
                }
                audit(&guards)?;
            }

            // Invariant 2, mid-run: every *old* generation's liveness is
            // explained by its guards (the pool itself only references
            // the newest; caches may hold at most one slot each).
            for (idx, v) in values.borrow().iter().enumerate() {
                let gen = idx as u64 + 1;
                if gen == generation {
                    continue;
                }
                let pinning = guards.iter().filter(|g| g.generation() == gen).count();
                if pinning == 0 {
                    // Only the test vector and (transiently) a stale
                    // worker cache may still hold it. Slots are dropped
                    // with their guards, so the count is tightly bounded.
                    prop_assert!(
                        Arc::strong_count(v) <= 1 + caches.len(),
                        "generation {} outlived its guards: count {}",
                        gen,
                        Arc::strong_count(v)
                    );
                } else {
                    prop_assert!(Arc::strong_count(v) >= 2, "pinned value freed early");
                }
            }

            // Invariant 2, end state: drop everything the readers hold;
            // every old generation must come back to exactly the test's
            // handle — nothing leaks, nothing double-frees.
            guards.clear();
            drop(caches);
            for (idx, v) in values.borrow().iter().enumerate() {
                let gen = idx as u64 + 1;
                let expect = if gen == generation { 2 } else { 1 };
                prop_assert_eq!(
                    Arc::strong_count(v),
                    expect,
                    "generation {} has stray references",
                    gen
                );
            }
        }
    }
}
