//! X1 — runtime vs minimum support on sparse Quest data (one Criterion
//! group per support level, one benchmark per miner).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_baselines::{AprioriMiner, EclatMiner, FpGrowthMiner, HMineMiner};
use plt_bench::datasets;
use plt_core::miner::Miner;
use plt_core::ConditionalMiner;
use plt_parallel::ParallelPltMiner;

fn bench(c: &mut Criterion) {
    let n = 2_000usize;
    let db = datasets::sparse(n);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(ConditionalMiner::default()),
        Box::new(ParallelPltMiner::default()),
        Box::new(AprioriMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(EclatMiner::default()),
        Box::new(EclatMiner::with_diffsets()),
        Box::new(HMineMiner),
    ];
    for rel in [0.02, 0.01, 0.005] {
        let min_sup = ((rel * n as f64).ceil() as u64).max(1);
        let mut group = c.benchmark_group(format!("x1/minsup_{:.2}pct", rel * 100.0));
        group.sample_size(10);
        for miner in &miners {
            group.bench_with_input(BenchmarkId::from_parameter(miner.name()), &db, |b, db| {
                b.iter(|| miner.mine(db, min_sup))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
