//! Epoll reactor server model: thousands of connections per core,
//! `std`-only.
//!
//! The thread-per-connection model in [`server`](crate::server) burns a
//! stack per peer; this module serves the same framed protocol from a
//! fixed set of reactor threads. One blocking *dispatching acceptor*
//! accepts and hands sockets round-robin to per-reactor bounded queues
//! (admission control happens right there — a peer past the connection
//! budget or the accept backlog gets an explicit `shed` error frame, not
//! a hang); each reactor runs an `epoll` loop over nonblocking
//! connection state machines built on the incremental
//! [`FrameDecoder`](crate::decode::FrameDecoder), with partial-read and
//! partial-write resumption.
//!
//! A connection walks `Reading → Writing → Reading …`, detouring through
//! `AwaitingFlush` for `ingest {wait:true}` (the blocking
//! `IngestQueue::flush` runs on a per-reactor waiter thread; the
//! connection stops decoding further frames until the completion
//! arrives, preserving per-connection response ordering, and a slot
//! *epoch* guards completions against slab reuse). Requests pin one
//! snapshot generation via the engine's
//! [`ReaderPool`](crate::reader_pool::ReaderPool), through a per-reactor
//! [`ReaderCache`] so the fast path takes no lock.
//!
//! Kernel access is direct `extern "C"` (`epoll_create1`/`epoll_ctl`/
//! `epoll_wait`/`eventfd`), the same pattern plt-store uses for `mmap` —
//! no `libc` crate. The module is Linux-only; on other platforms
//! [`serve`](crate::server::serve) falls back to the thread model.
//!
//! Fault injection mirrors the blocking path: `short_io`/`stall` apply
//! per nonblocking read/write at `ServerRead`/`ServerWrite`, and frame
//! faults (torn/oversized) are applied when a response is encoded —
//! after the injected bytes flush, the connection closes, exactly like
//! the blocking writer erroring out.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use plt_obs::{MetricsRecorder, Recorder};

use crate::builder::IngestQueue;
use crate::decode::{encode_frame, encode_frame_with, FrameDecoder};
use crate::engine::Engine;
use crate::fault::{IoFault, Site};
use crate::json::Json;
use crate::proto::{err_response, ok_response, render_response};
use crate::reader_pool::ReaderCache;
use crate::server::{dispatch_request, wake_acceptors, Dispatch, ServerConfig, ServerHandle};
use crate::snapshot::Snapshot;

/// Raw kernel bindings, declared directly like `plt_store::mmap` does.
mod sys {
    /// One epoll event. The kernel ABI packs this struct on x86-64 (no
    /// padding between `events` and `data`); other architectures use
    /// natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    /// `EFD_NONBLOCK` == `O_NONBLOCK`.
    pub const EFD_NONBLOCK: i32 = 0o4000;
}

/// Owned epoll instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(0) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent { events, data };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&self, events: &mut [sys::EpollEvent], timeout: Duration) -> usize {
        let rc = unsafe {
            sys::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout.as_millis().min(i32::MAX as u128) as i32,
            )
        };
        // EINTR and friends surface as "no events"; the loop re-polls.
        rc.max(0) as usize
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys::close(self.fd) };
    }
}

/// Cross-thread wakeup for a reactor parked in `epoll_wait`: an eventfd
/// registered alongside the connections.
pub(crate) struct Waker {
    file: File,
}

impl Waker {
    fn new() -> std::io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Waker {
            file: unsafe { File::from_raw_fd(fd) },
        })
    }

    pub(crate) fn wake(&self) {
        let _ = (&self.file).write(&1u64.to_ne_bytes());
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        while (&self.file).read(&mut buf).is_ok() {}
    }

    fn fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }
}

/// Slab token reserved for the reactor's own eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

/// How long `epoll_wait` parks before re-checking the stop flag and
/// sweeping deadlines.
const POLL_TIMEOUT: Duration = Duration::from_millis(25);

/// Poll iterations between flushes of the reactor's local plt-obs
/// recorder into the shared one.
const OBS_FLUSH_EVERY: u64 = 1024;

/// Connection lifecycle for the `conn.state_transitions` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Waiting for (more of) a request frame.
    Reading,
    /// Draining a response through partial writes.
    Writing,
    /// An `ingest {wait:true}` flush is in flight on the waiter thread;
    /// frame decoding is suspended to preserve response ordering.
    AwaitingFlush,
}

/// One nonblocking connection state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Frames decoded but not yet dispatched (a pipelining client can
    /// land several per read).
    pending: VecDeque<String>,
    /// A protocol-error frame owed to the peer once `pending` drains.
    pending_error: Option<String>,
    /// Outgoing bytes; `sent` of them are already on the wire.
    out: Vec<u8>,
    sent: usize,
    state: ConnState,
    /// Guards async flush completions against slab-slot reuse.
    epoch: u64,
    last_activity: Instant,
    /// Peer half-closed its write side (clean EOF seen).
    read_closed: bool,
    /// Close once `out` drains (shutdown ack, injected torn frame, or a
    /// terminal protocol error).
    close_after_flush: bool,
    /// Currently registered epoll interest mask.
    interest: u32,
    /// Envelope version negotiated by `hello` (1 until then).
    version: u64,
}

/// Job for the waiter thread: run the blocking flush for a connection.
struct FlushJob {
    token: usize,
    epoch: u64,
    accepted: u64,
    /// Envelope version of the submitting connection at dispatch time.
    version: u64,
}

/// Completion from the waiter thread.
struct FlushDone {
    token: usize,
    epoch: u64,
    response: String,
}

/// What one nonblocking write step decided (computed under the `Conn`
/// borrow, acted on after it ends).
enum WriteStep {
    /// Buffer drained; close if the flag says so.
    Drained {
        close: bool,
    },
    Progress,
    WouldBlock,
    Dead,
}

struct Reactor {
    id: usize,
    epoll: Epoll,
    waker: Arc<Waker>,
    conn_rx: Receiver<TcpStream>,
    flush_tx: Sender<FlushJob>,
    done_rx: Receiver<FlushDone>,
    slab: Vec<Option<Conn>>,
    free: Vec<usize>,
    epoch: u64,
    engine: Arc<Engine>,
    ingest: Option<IngestQueue>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    all_wakers: Arc<Vec<Arc<Waker>>>,
    addr: SocketAddr,
    reader: ReaderCache<Snapshot>,
    obs: MetricsRecorder,
}

impl Reactor {
    fn conn(&mut self, idx: usize) -> &mut Conn {
        self.slab[idx].as_mut().expect("live connection slot")
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            self.release_refused();
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slab.push(None);
                self.slab.len() - 1
            }
        };
        self.epoch += 1;
        let fd = stream.as_raw_fd();
        let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
        let conn = Conn {
            stream,
            decoder: FrameDecoder::new(self.config.max_frame),
            pending: VecDeque::new(),
            pending_error: None,
            out: Vec::new(),
            sent: 0,
            state: ConnState::Reading,
            epoch: self.epoch,
            last_activity: Instant::now(),
            read_closed: false,
            close_after_flush: false,
            interest,
            version: 1,
        };
        if self
            .epoll
            .ctl(sys::EPOLL_CTL_ADD, fd, interest, idx as u64)
            .is_err()
        {
            self.free.push(idx);
            self.release_refused();
            return;
        }
        self.slab[idx] = Some(conn);
    }

    /// Undo the acceptor's connection accounting for a socket that never
    /// became a registered connection.
    fn release_refused(&self) {
        self.engine
            .metrics()
            .reactor
            .active_connections
            .fetch_sub(1, Ordering::Relaxed);
    }

    fn transition(&mut self, idx: usize, state: ConnState) {
        let changed = {
            let conn = self.conn(idx);
            if conn.state != state {
                conn.state = state;
                true
            } else {
                false
            }
        };
        if changed {
            self.obs.counter("conn.state_transitions", 1);
            self.engine
                .metrics()
                .reactor
                .state_transitions
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn close(&mut self, idx: usize) {
        if let Some(conn) = self.slab[idx].take() {
            let _ = self
                .epoll
                .ctl(sys::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
            self.free.push(idx);
            self.obs.counter("conn.state_transitions", 1);
            let reactor = &self.engine.metrics().reactor;
            reactor.state_transitions.fetch_add(1, Ordering::Relaxed);
            reactor.active_connections.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Recomputes and applies the epoll interest mask from the
    /// connection's buffers and state.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.slab[idx].as_mut() else {
            return;
        };
        let mut want = sys::EPOLLRDHUP;
        if !conn.read_closed && conn.state != ConnState::AwaitingFlush {
            want |= sys::EPOLLIN;
        }
        if conn.sent < conn.out.len() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let fd = conn.stream.as_raw_fd();
            let _ = self.epoll.ctl(sys::EPOLL_CTL_MOD, fd, want, idx as u64);
        }
    }

    /// Encodes `payload` (applying any frame fault) onto the
    /// connection's out-buffer and attempts an immediate flush.
    fn queue_response(&mut self, idx: usize, payload: &str) {
        let fault = self.config.fault.as_deref().map(|p| (p, Site::ServerWrite));
        let (bytes, close_after) = encode_frame_with(payload, fault);
        {
            let conn = self.conn(idx);
            conn.out.extend_from_slice(&bytes);
            conn.close_after_flush |= close_after;
        }
        self.transition(idx, ConnState::Writing);
        self.do_write(idx);
    }

    /// One deterministic I/O fault draw; a stall sleeps in place (the
    /// reactor is deliberately held — chaos tests exercise exactly that).
    fn short_io(&self, site: Site) -> bool {
        match self.config.fault.as_deref().and_then(|p| p.io_fault(site)) {
            Some(IoFault::Short) => true,
            Some(IoFault::Stall(d)) => {
                std::thread::sleep(d);
                false
            }
            None => false,
        }
    }

    fn do_read(&mut self, idx: usize) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let window = if self.short_io(Site::ServerRead) {
                1
            } else {
                buf.len()
            };
            let read = {
                let conn = self.conn(idx);
                conn.stream.read(&mut buf[..window])
            };
            match read {
                Ok(0) => {
                    let finish = {
                        let conn = self.conn(idx);
                        conn.read_closed = true;
                        conn.last_activity = Instant::now();
                        conn.decoder.finish()
                    };
                    if let Err(e) = finish {
                        // Garbage trailing header: an error frame is
                        // owed, exactly like the blocking codec. Clean
                        // EOF and mid-frame truncation close silently.
                        self.protocol_error(idx, e.to_string());
                    }
                    break;
                }
                Ok(n) => {
                    {
                        let conn = self.conn(idx);
                        conn.last_activity = Instant::now();
                        conn.decoder.push(&buf[..n]);
                    }
                    self.drain_decoder(idx);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        self.process_pending(idx);
        if self.slab[idx].is_some() {
            self.check_quiescent(idx);
        }
        if self.slab[idx].is_some() {
            self.update_interest(idx);
        }
    }

    /// Pops every complete frame out of the decoder into the pending
    /// queue; a framing error is parked until the queue drains.
    fn drain_decoder(&mut self, idx: usize) {
        loop {
            let result = {
                let conn = self.conn(idx);
                if conn.pending_error.is_some() {
                    return;
                }
                conn.decoder.next_frame()
            };
            match result {
                Ok(Some(frame)) => self.conn(idx).pending.push_back(frame),
                Ok(None) => return,
                Err(e) => {
                    self.protocol_error(idx, e.to_string());
                    return;
                }
            }
        }
    }

    /// Records a framing violation and parks the error frame to be sent
    /// once earlier (already-decoded) requests have been answered.
    fn protocol_error(&mut self, idx: usize, message: String) {
        self.engine
            .metrics()
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        let conn = self.conn(idx);
        if conn.pending_error.is_none() {
            let version = conn.version;
            conn.pending_error = Some(render_response(&err_response(message), version));
        }
    }

    /// Dispatches decoded frames in order, stopping at an async flush
    /// (ordering) or when the connection is marked for closure.
    fn process_pending(&mut self, idx: usize) {
        enum Next {
            Frame(String),
            Error(String),
            Done,
        }
        loop {
            if self.slab[idx].is_none() {
                return;
            }
            let next = {
                let conn = self.conn(idx);
                if conn.state == ConnState::AwaitingFlush || conn.close_after_flush {
                    return;
                }
                if let Some(frame) = conn.pending.pop_front() {
                    Next::Frame(frame)
                } else if let Some(error) = conn.pending_error.take() {
                    conn.close_after_flush = true;
                    Next::Error(error)
                } else {
                    Next::Done
                }
            };
            match next {
                Next::Frame(frame) => self.dispatch_one(idx, &frame),
                Next::Error(error) => {
                    self.queue_response(idx, &error);
                    return;
                }
                Next::Done => return,
            }
        }
    }

    fn dispatch_one(&mut self, idx: usize, payload: &str) {
        let ingest = self.ingest.clone();
        // Copy the connection's negotiated version out, dispatch (a
        // `hello` may update it), then write it back — the Conn borrow
        // cannot be held across the dispatch call.
        let mut version = self.conn(idx).version;
        let dispatch = dispatch_request(
            payload,
            &self.engine,
            ingest.as_ref(),
            Some(&mut self.reader),
            &mut version,
        );
        self.conn(idx).version = version;
        match dispatch {
            Dispatch::Respond(response) => self.queue_response(idx, &response),
            Dispatch::ShutdownRequested(response) => {
                self.stop.store(true, Ordering::SeqCst);
                for w in self.all_wakers.iter() {
                    w.wake();
                }
                wake_acceptors(self.addr, usize::MAX);
                self.conn(idx).close_after_flush = true;
                self.queue_response(idx, &response);
            }
            Dispatch::AwaitFlush { accepted } => {
                let epoch = self.conn(idx).epoch;
                self.transition(idx, ConnState::AwaitingFlush);
                if self
                    .flush_tx
                    .send(FlushJob {
                        token: idx,
                        epoch,
                        accepted,
                        version,
                    })
                    .is_err()
                {
                    self.transition(idx, ConnState::Writing);
                    self.queue_response(
                        idx,
                        &render_response(&err_response("snapshot builder has exited"), version),
                    );
                }
            }
        }
    }

    fn do_write(&mut self, idx: usize) {
        loop {
            let short = self.short_io(Site::ServerWrite);
            let step = {
                let conn = self.conn(idx);
                if conn.sent >= conn.out.len() {
                    conn.out.clear();
                    conn.sent = 0;
                    WriteStep::Drained {
                        close: conn.close_after_flush,
                    }
                } else {
                    let end = if short { conn.sent + 1 } else { conn.out.len() };
                    match conn.stream.write(&conn.out[conn.sent..end]) {
                        Ok(0) => WriteStep::Dead,
                        Ok(n) => {
                            conn.sent += n;
                            conn.last_activity = Instant::now();
                            WriteStep::Progress
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            WriteStep::WouldBlock
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                            WriteStep::Progress
                        }
                        Err(_) => WriteStep::Dead,
                    }
                }
            };
            match step {
                WriteStep::Drained { close: true } => {
                    self.close(idx);
                    return;
                }
                WriteStep::Drained { close: false } => {
                    if self.conn(idx).state == ConnState::Writing {
                        self.transition(idx, ConnState::Reading);
                    }
                    break;
                }
                WriteStep::Progress => continue,
                WriteStep::WouldBlock => break,
                WriteStep::Dead => {
                    self.close(idx);
                    return;
                }
            }
        }
        self.update_interest(idx);
    }

    /// Closes a half-closed connection once nothing remains to answer.
    fn check_quiescent(&mut self, idx: usize) {
        let done = {
            let conn = self.conn(idx);
            conn.read_closed
                && conn.pending.is_empty()
                && conn.pending_error.is_none()
                && conn.state != ConnState::AwaitingFlush
                && conn.sent >= conn.out.len()
        };
        if done {
            self.close(idx);
        }
    }

    fn handle_event(&mut self, token: u64, revents: u32) {
        let idx = token as usize;
        if idx >= self.slab.len() || self.slab[idx].is_none() {
            return;
        }
        if revents & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close(idx);
            return;
        }
        if revents & sys::EPOLLOUT != 0 {
            self.do_write(idx);
        }
        if self.slab[idx].is_some() && revents & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
            self.do_read(idx);
        }
    }

    fn handle_completion(&mut self, done: FlushDone) {
        let idx = done.token;
        // The slot may have been reused since the job was queued; the
        // epoch check makes a late completion a no-op instead of a
        // response on a stranger's connection.
        let live = {
            let Some(conn) = self.slab.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            conn.epoch == done.epoch && conn.state == ConnState::AwaitingFlush
        };
        if !live {
            return;
        }
        self.queue_response(idx, &done.response);
        self.process_pending(idx);
        if self.slab[idx].is_some() {
            self.check_quiescent(idx);
        }
        if self.slab[idx].is_some() {
            self.update_interest(idx);
        }
    }

    /// Times out stalled peers, mirroring the blocking model's socket
    /// deadlines: reading conns against `read_deadline`, writing conns
    /// (peer not draining) against `write_deadline`.
    fn sweep_deadlines(&mut self) {
        let now = Instant::now();
        let mut expired = Vec::new();
        for (idx, slot) in self.slab.iter().enumerate() {
            let Some(conn) = slot else { continue };
            let deadline = match conn.state {
                ConnState::Reading => self.config.read_deadline,
                ConnState::Writing => self.config.write_deadline,
                // A flush can legitimately outlast both deadlines; the
                // builder's own health is watched elsewhere.
                ConnState::AwaitingFlush => None,
            };
            if let Some(d) = deadline {
                if now.duration_since(conn.last_activity) > d {
                    expired.push(idx);
                }
            }
        }
        for idx in expired {
            self.engine
                .metrics()
                .timeouts
                .fetch_add(1, Ordering::Relaxed);
            self.close(idx);
        }
    }

    fn run(mut self, shared_obs: Option<Arc<Mutex<MetricsRecorder>>>) {
        let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 512];
        let mut polls: u64 = 0;
        {
            let r = &self.engine.metrics().reactor;
            r.mark_enabled();
            r.reactors.fetch_add(1, Ordering::Relaxed);
        }
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let n = self.epoll.wait(&mut events, POLL_TIMEOUT);
            let handle_start = Instant::now();
            let mut handled = 0u64;
            for event in events.iter().take(n) {
                let (data, revents) = (event.data, event.events);
                handled += 1;
                if data == WAKE_TOKEN {
                    self.waker.drain();
                    while let Ok(stream) = self.conn_rx.try_recv() {
                        self.register(stream);
                    }
                    while let Ok(done) = self.done_rx.try_recv() {
                        self.handle_completion(done);
                    }
                } else {
                    self.handle_event(data, revents);
                }
            }
            polls += 1;
            self.sweep_deadlines();
            if handled > 0 {
                let elapsed = handle_start.elapsed();
                self.obs.counter("reactor.events", handled);
                self.obs.span("reactor/poll", elapsed.as_nanos() as u64);
                let r = &self.engine.metrics().reactor;
                r.events.fetch_add(handled, Ordering::Relaxed);
                r.poll.record(elapsed, None);
            }
            if polls.is_multiple_of(OBS_FLUSH_EVERY) {
                self.flush_obs(&shared_obs);
            }
        }
        // Unwind: every registered connection, plus any accepted sockets
        // still parked in the dispatch queue, count off the active gauge.
        for idx in 0..self.slab.len() {
            self.close(idx);
        }
        while self.conn_rx.try_recv().is_ok() {
            self.release_refused();
        }
        self.flush_obs(&shared_obs);
    }

    fn flush_obs(&mut self, shared: &Option<Arc<Mutex<MetricsRecorder>>>) {
        if let Some(shared) = shared {
            if !self.obs.is_empty() {
                shared.lock().unwrap().merge(&self.obs);
                self.obs = MetricsRecorder::new();
            }
        }
    }
}

/// Waiter thread: runs blocking `flush` calls so the reactor never
/// parks. One per reactor; flushes serialize behind the builder anyway.
fn waiter_loop(
    ingest: Option<IngestQueue>,
    engine: Arc<Engine>,
    jobs: Receiver<FlushJob>,
    done: Sender<FlushDone>,
    waker: Arc<Waker>,
) {
    while let Ok(job) = jobs.recv() {
        let response = match ingest.as_ref().and_then(|q| q.flush()) {
            Some(generation) => render_response(
                &ok_response(vec![
                    ("accepted", Json::from(job.accepted)),
                    ("generation", Json::from(generation)),
                    ("stale", Json::Bool(engine.is_stale())),
                ]),
                job.version,
            ),
            None => render_response(&err_response("snapshot builder has exited"), job.version),
        };
        if done
            .send(FlushDone {
                token: job.token,
                epoch: job.epoch,
                response,
            })
            .is_err()
        {
            return;
        }
        waker.wake();
    }
}

/// Dispatching acceptor: blocking `accept`, admission control, and
/// round-robin handoff to reactor queues.
fn acceptor_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    queues: Vec<SyncSender<TcpStream>>,
    wakers: Arc<Vec<Arc<Waker>>>,
    config: ServerConfig,
    shared_obs: Option<Arc<Mutex<MetricsRecorder>>>,
) {
    let mut next = 0usize;
    let mut obs = MetricsRecorder::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let reactor_metrics = &engine.metrics().reactor;
        if reactor_metrics.active_connections.load(Ordering::Relaxed)
            >= config.max_connections as u64
        {
            shed(
                &engine,
                &mut obs,
                stream,
                "shed: server at connection capacity",
            );
            continue;
        }
        // Optimistically count the connection; a reactor that fails to
        // register it gives the slot back.
        reactor_metrics
            .active_connections
            .fetch_add(1, Ordering::Relaxed);
        let mut parked = Some(stream);
        for attempt in 0..queues.len() {
            let r = (next + attempt) % queues.len();
            match queues[r].try_send(parked.take().unwrap()) {
                Ok(()) => {
                    next = r + 1;
                    reactor_metrics.accepted.fetch_add(1, Ordering::Relaxed);
                    wakers[r].wake();
                    break;
                }
                Err(TrySendError::Full(s)) | Err(TrySendError::Disconnected(s)) => {
                    parked = Some(s);
                }
            }
        }
        if let Some(stream) = parked {
            reactor_metrics
                .active_connections
                .fetch_sub(1, Ordering::Relaxed);
            shed(&engine, &mut obs, stream, "shed: accept backlog full");
        }
    }
    if let Some(shared) = shared_obs {
        if !obs.is_empty() {
            shared.lock().unwrap().merge(&obs);
        }
    }
}

/// Refuses a connection with an explicit shed frame (bounded write so a
/// hostile peer cannot pin the acceptor) and counts it everywhere the
/// operators look: `shed.count` (obs), `reactor.shed_connections`, and
/// the model-agnostic `rejected_connections`.
fn shed(engine: &Engine, obs: &mut MetricsRecorder, mut stream: TcpStream, reason: &str) {
    obs.counter("shed.count", 1);
    let m = engine.metrics();
    m.rejected_connections.fetch_add(1, Ordering::Relaxed);
    m.reactor.shed_connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let frame = encode_frame(&err_response(reason).to_string());
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
}

/// Starts the reactor-model server on an already-bound listener.
pub(crate) fn serve_reactor(
    listener: TcpListener,
    engine: Arc<Engine>,
    ingest: Option<IngestQueue>,
    config: ServerConfig,
    addr: SocketAddr,
) -> std::io::Result<ServerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let reactors = config.reactors.max(1);
    engine.metrics().reactor.mark_enabled();

    let mut wakers = Vec::with_capacity(reactors);
    for _ in 0..reactors {
        wakers.push(Arc::new(Waker::new()?));
    }
    let wakers = Arc::new(wakers);

    let mut queues = Vec::with_capacity(reactors);
    let mut threads = Vec::new();
    for i in 0..reactors {
        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(config.accept_backlog.max(1));
        queues.push(conn_tx);
        let (flush_tx, flush_rx) = mpsc::channel::<FlushJob>();
        let (done_tx, done_rx) = mpsc::channel::<FlushDone>();
        let waker = wakers[i].clone();

        let epoll = Epoll::new()?;
        epoll.ctl(sys::EPOLL_CTL_ADD, waker.fd(), sys::EPOLLIN, WAKE_TOKEN)?;

        threads.push(
            std::thread::Builder::new()
                .name(format!("plt-serve-waiter-{i}"))
                .spawn({
                    let ingest = ingest.clone();
                    let engine = engine.clone();
                    let waker = waker.clone();
                    move || waiter_loop(ingest, engine, flush_rx, done_tx, waker)
                })?,
        );

        let reactor = Reactor {
            id: i,
            epoll,
            waker,
            conn_rx,
            flush_tx,
            done_rx,
            slab: Vec::new(),
            free: Vec::new(),
            epoch: 0,
            engine: engine.clone(),
            ingest: ingest.clone(),
            config: config.clone(),
            stop: stop.clone(),
            all_wakers: wakers.clone(),
            addr,
            reader: ReaderCache::new(),
            obs: MetricsRecorder::new(),
        };
        let shared_obs = config.obs.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("plt-serve-reactor-{}", reactor.id))
                .spawn(move || reactor.run(shared_obs))?,
        );
    }

    threads.push(
        std::thread::Builder::new()
            .name("plt-serve-dispatch".into())
            .spawn({
                let engine = engine.clone();
                let stop = stop.clone();
                let wakers = wakers.clone();
                let config = config.clone();
                let shared_obs = config.obs.clone();
                move || acceptor_loop(listener, engine, stop, queues, wakers, config, shared_obs)
            })?,
    );

    let wake_fns: Vec<Box<dyn Fn() + Send + Sync>> = wakers
        .iter()
        .map(|w| {
            let w = w.clone();
            Box::new(move || w.wake()) as Box<dyn Fn() + Send + Sync>
        })
        .collect();
    Ok(ServerHandle::from_parts(addr, stop, threads, wake_fns))
}
