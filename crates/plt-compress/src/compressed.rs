//! The compressed PLT: per-partition front-coded varint blocks plus a sum
//! index.
//!
//! Layout of one partition (all vectors of one length `k`):
//!
//! ```text
//! entries sorted lexicographically, grouped into blocks of BLOCK entries;
//! each block starts at a byte offset recorded in `restarts`.
//!
//! entry 0 of a block:  k varint positions, varint freq
//! entry i > 0:         varint lcp (shared prefix length with previous
//!                      entry), (k − lcp) varint positions, varint freq
//! ```
//!
//! Random access decodes at most one block; streaming decodes run straight
//! through. The sum index maps each distinct vector sum to the ordinals of
//! its entries, so a conditional database (all vectors whose last item has
//! rank `j` — Lemma 4.1.1) is fetched by ordinal without touching other
//! blocks.

use std::collections::BTreeMap;

use bytes::Bytes;

use plt_core::item::{Rank, Support};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;

use crate::varint;

/// Entries per front-coding block (restart interval).
const BLOCK: usize = 16;

/// One compressed partition.
#[derive(Debug, Clone)]
struct Partition {
    /// Vector length of every entry in this partition.
    k: usize,
    data: Bytes,
    /// Byte offset of each block start.
    restarts: Vec<u32>,
    num_entries: usize,
    /// sum → ordinals of entries with that sum, ordinals ascending.
    sum_index: BTreeMap<Rank, Vec<u32>>,
}

impl Partition {
    fn build(k: usize, mut entries: Vec<(PositionVector, Support)>) -> Partition {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut data = Vec::new();
        let mut restarts = Vec::new();
        let mut sum_index: BTreeMap<Rank, Vec<u32>> = BTreeMap::new();
        let mut prev: &[Rank] = &[];
        for (ordinal, (v, freq)) in entries.iter().enumerate() {
            let positions = v.positions();
            debug_assert_eq!(positions.len(), k);
            sum_index.entry(v.sum()).or_default().push(ordinal as u32);
            if ordinal % BLOCK == 0 {
                restarts.push(data.len() as u32);
                for &p in positions {
                    varint::put_u32(&mut data, p);
                }
            } else {
                let lcp = positions
                    .iter()
                    .zip(prev)
                    .take_while(|(a, b)| a == b)
                    .count();
                varint::put_u32(&mut data, lcp as u32);
                for &p in &positions[lcp..] {
                    varint::put_u32(&mut data, p);
                }
            }
            varint::put_u64(&mut data, *freq);
            prev = positions;
        }
        Partition {
            k,
            data: Bytes::from(data),
            restarts,
            num_entries: entries.len(),
            sum_index,
        }
    }

    /// Streams every `(vector, freq)` entry in lexicographic order.
    fn iter(&self) -> PartitionIter<'_> {
        PartitionIter {
            partition: self,
            buf: &self.data,
            ordinal: 0,
            prev: Vec::with_capacity(self.k),
        }
    }

    /// Decodes the entry at `ordinal` by walking its block.
    fn decode_at(&self, ordinal: u32) -> (PositionVector, Support) {
        let block = ordinal as usize / BLOCK;
        let mut buf = &self.data[self.restarts[block] as usize..];
        let mut prev: Vec<Rank> = Vec::with_capacity(self.k);
        let first = block * BLOCK;
        for i in first..=ordinal as usize {
            let lcp = if i == first {
                0
            } else {
                varint::get_u32(&mut buf) as usize
            };
            prev.truncate(lcp);
            for _ in lcp..self.k {
                prev.push(varint::get_u32(&mut buf));
            }
            let freq = varint::get_u64(&mut buf);
            if i == ordinal as usize {
                return (
                    PositionVector::from_positions(prev.clone()).expect("stored vectors valid"),
                    freq,
                );
            }
        }
        unreachable!("ordinal within bounds")
    }
}

struct PartitionIter<'a> {
    partition: &'a Partition,
    buf: &'a [u8],
    ordinal: usize,
    prev: Vec<Rank>,
}

impl Iterator for PartitionIter<'_> {
    type Item = (PositionVector, Support);

    fn next(&mut self) -> Option<Self::Item> {
        if self.ordinal >= self.partition.num_entries {
            return None;
        }
        let lcp = if self.ordinal.is_multiple_of(BLOCK) {
            0
        } else {
            varint::get_u32(&mut self.buf) as usize
        };
        self.prev.truncate(lcp);
        for _ in lcp..self.partition.k {
            self.prev.push(varint::get_u32(&mut self.buf));
        }
        let freq = varint::get_u64(&mut self.buf);
        self.ordinal += 1;
        Some((
            PositionVector::from_positions(self.prev.clone()).expect("stored vectors valid"),
            freq,
        ))
    }
}

/// A PLT stored compressed. Holds everything needed to reconstruct the
/// original [`Plt`] (the ranking is kept uncompressed — it is `O(items)`).
///
/// # Examples
///
/// ```
/// use plt_compress::CompressedPlt;
/// use plt_core::construct::{construct, ConstructOptions};
///
/// let db = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3]];
/// let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
/// let compressed = CompressedPlt::from_plt(&plt);
/// // Exact round trip…
/// let back = compressed.to_plt();
/// assert_eq!(back.num_vectors(), plt.num_vectors());
/// // …and indexed access to item 3's conditional database (sum == 3).
/// assert_eq!(compressed.vectors_with_sum(3).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CompressedPlt {
    partitions: Vec<Partition>,
    ranking: plt_core::ranking::ItemRanking,
    min_support: Support,
    num_transactions: u64,
}

impl CompressedPlt {
    /// Compresses a PLT.
    pub fn from_plt(plt: &Plt) -> CompressedPlt {
        let mut partitions = Vec::new();
        for k in 1..=plt.max_len() {
            let entries: Vec<(PositionVector, Support)> =
                plt.partition(k).map(|(v, e)| (v.clone(), e.freq)).collect();
            if !entries.is_empty() {
                partitions.push(Partition::build(k, entries));
            }
        }
        CompressedPlt {
            partitions,
            ranking: plt.ranking().clone(),
            min_support: plt.min_support(),
            num_transactions: plt.num_transactions(),
        }
    }

    /// Decompresses back into a [`Plt`]; exact round trip.
    pub fn to_plt(&self) -> Plt {
        let mut plt =
            Plt::new(self.ranking.clone(), self.min_support).expect("stored min support was valid");
        for p in &self.partitions {
            for (v, freq) in p.iter() {
                plt.insert_vector(v, freq);
            }
        }
        for _ in 0..self.num_transactions {
            plt.note_transaction();
        }
        plt
    }

    /// Total number of stored vectors.
    pub fn num_vectors(&self) -> usize {
        self.partitions.iter().map(|p| p.num_entries).sum()
    }

    /// Compressed payload size in bytes (vector data only; the index adds
    /// [`index_bytes`](Self::index_bytes)).
    pub fn data_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.data.len()).sum()
    }

    /// Size of the restart tables and sum index.
    pub fn index_bytes(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                p.restarts.len() * 4 + p.sum_index.values().map(|v| 4 + v.len() * 4).sum::<usize>()
            })
            .sum()
    }

    /// The conditional database of the item with rank `j`: decoded vectors
    /// whose sum is `j`, fetched through the sum index. (Callers typically
    /// drop the last position next — `PositionVector::parent`.)
    pub fn vectors_with_sum(&self, j: Rank) -> Vec<(PositionVector, Support)> {
        let mut out = Vec::new();
        for p in &self.partitions {
            if let Some(ordinals) = p.sum_index.get(&j) {
                for &o in ordinals {
                    out.push(p.decode_at(o));
                }
            }
        }
        out
    }

    /// Streams every stored entry (shortest partitions first).
    pub fn iter(&self) -> impl Iterator<Item = (PositionVector, Support)> + '_ {
        self.partitions.iter().flat_map(|p| p.iter())
    }

    /// Builds the size-accounting report of experiment X6 for a PLT and
    /// the database it came from.
    pub fn report(plt: &Plt, raw_db_items: usize) -> CompressionReport {
        let compressed = CompressedPlt::from_plt(plt);
        let plt_table_bytes: usize = plt
            .iter()
            .map(|(v, _)| {
                v.len() * std::mem::size_of::<Rank>()
                    + std::mem::size_of::<Support>()
                    + std::mem::size_of::<Rank>()
            })
            .sum();
        CompressionReport {
            raw_db_bytes: raw_db_items * std::mem::size_of::<u32>(),
            plt_table_bytes,
            compressed_data_bytes: compressed.data_bytes(),
            compressed_index_bytes: compressed.index_bytes(),
            num_vectors: compressed.num_vectors(),
        }
    }
}

impl CompressedPlt {
    /// Serialises to the `PLTC` v2 byte format (see [`crate::file`]):
    /// header with CRC32, ranking table, per-partition payloads, trailing
    /// checksum. Indexes are *not* stored — they are derived data,
    /// rebuilt on load.
    pub fn to_bytes(&self) -> Vec<u8> {
        use crate::varint::{put_u32, put_u64};
        let mut out: Vec<u8> = Vec::new();
        out.extend_from_slice(crate::file::MAGIC);
        put_u32(&mut out, crate::file::VERSION);
        // Reserve the header CRC32; patched once the body is complete.
        let crc_pos = out.len();
        out.extend_from_slice(&[0u8; 4]);
        put_u64(&mut out, self.min_support);
        put_u64(&mut out, self.num_transactions);
        out.push(match self.ranking.policy() {
            plt_core::ranking::RankPolicy::Lexicographic => 0,
            plt_core::ranking::RankPolicy::FrequencyDescending => 1,
            plt_core::ranking::RankPolicy::FrequencyAscending => 2,
        });
        put_u64(&mut out, self.ranking.len() as u64);
        for (item, _, support) in self.ranking.entries() {
            put_u32(&mut out, item);
            put_u64(&mut out, support);
        }
        put_u64(&mut out, self.partitions.len() as u64);
        for p in &self.partitions {
            put_u64(&mut out, p.k as u64);
            put_u64(&mut out, p.num_entries as u64);
            put_u64(&mut out, p.data.len() as u64);
            out.extend_from_slice(&p.data);
        }
        let crc = crate::crc::crc32(&out[crc_pos + 4..]);
        out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
        let checksum = crate::file::checksum(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserialises the `PLTC` byte format, validating magic, version,
    /// CRC32 and checksum, and rebuilding the restart tables and sum
    /// indexes.
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<CompressedPlt> {
        use crate::varint::{get_u32, get_u64};
        use std::io::{Error, ErrorKind};
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());

        if bytes.len() < crate::file::MAGIC.len() + 8 {
            return Err(bad("truncated PLTC file"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if crate::file::checksum(body) != stored {
            return Err(bad("PLTC checksum mismatch"));
        }
        let mut buf = body;
        if &buf[..crate::file::MAGIC.len()] != crate::file::MAGIC {
            return Err(bad("not a PLTC file (bad magic)"));
        }
        buf = &buf[crate::file::MAGIC.len()..];
        let version = get_u32(&mut buf);
        if version != crate::file::VERSION {
            return Err(bad(&format!("unsupported PLTC version {version}")));
        }
        if buf.len() < 4 {
            return Err(bad("truncated PLTC header"));
        }
        let stored_crc = u32::from_le_bytes(buf[..4].try_into().expect("4-byte crc"));
        buf = &buf[4..];
        if crate::crc::crc32(buf) != stored_crc {
            return Err(bad("PLTC CRC32 mismatch"));
        }
        let min_support = get_u64(&mut buf);
        let num_transactions = get_u64(&mut buf);
        let policy = match buf.first() {
            Some(0) => plt_core::ranking::RankPolicy::Lexicographic,
            Some(1) => plt_core::ranking::RankPolicy::FrequencyDescending,
            Some(2) => plt_core::ranking::RankPolicy::FrequencyAscending,
            _ => return Err(bad("bad rank policy byte")),
        };
        buf = &buf[1..];
        let n_items = get_u64(&mut buf) as usize;
        let mut frequent = Vec::with_capacity(n_items);
        for _ in 0..n_items {
            let item = get_u32(&mut buf);
            let support = get_u64(&mut buf);
            frequent.push((item, support));
        }
        // `from_frequent_items` re-sorts by the policy (deterministic tie
        // break), reproducing the original ranking exactly.
        let ranking = plt_core::ranking::ItemRanking::from_frequent_items(frequent, policy);

        let n_partitions = get_u64(&mut buf) as usize;
        let mut partitions = Vec::with_capacity(n_partitions);
        for _ in 0..n_partitions {
            let k = get_u64(&mut buf) as usize;
            let num_entries = get_u64(&mut buf) as usize;
            let data_len = get_u64(&mut buf) as usize;
            if k == 0 || buf.len() < data_len {
                return Err(bad("corrupt partition header"));
            }
            let (data, rest) = buf.split_at(data_len);
            buf = rest;
            // Decode and rebuild: the payload is not trusted to carry
            // valid indexes, so entries are re-front-coded from scratch.
            let shell = Partition {
                k,
                data: Bytes::copy_from_slice(data),
                restarts: (0..num_entries.div_ceil(BLOCK)).map(|_| 0).collect(),
                num_entries,
                sum_index: BTreeMap::new(),
            };
            // Streaming decode does not need restarts; collect entries.
            // The decoder asserts on malformed varints, so a payload that
            // passes the (non-cryptographic) checksum but is structurally
            // inconsistent is converted from a panic into InvalidData.
            let entries: Vec<(PositionVector, Support)> =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| shell.iter().collect()))
                    .map_err(|_| bad("corrupt partition payload"))?;
            if entries.len() != num_entries {
                return Err(bad("partition entry count mismatch"));
            }
            partitions.push(Partition::build(k, entries));
        }
        Ok(CompressedPlt {
            partitions,
            ranking,
            min_support,
            num_transactions,
        })
    }
}

/// Size accounting for experiment X6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionReport {
    /// The horizontal database as flat `u32` items.
    pub raw_db_bytes: usize,
    /// The uncompressed PLT table (positions + freq + cached sum per
    /// vector).
    pub plt_table_bytes: usize,
    /// Front-coded varint payload.
    pub compressed_data_bytes: usize,
    /// Restart + sum-index overhead.
    pub compressed_index_bytes: usize,
    /// Distinct vectors stored.
    pub num_vectors: usize,
}

impl CompressionReport {
    /// Compression ratio of the payload vs the raw database.
    pub fn ratio_vs_raw(&self) -> f64 {
        self.compressed_data_bytes as f64 / self.raw_db_bytes.max(1) as f64
    }

    /// Compression ratio of the payload vs the in-memory PLT table.
    pub fn ratio_vs_table(&self) -> f64 {
        self.compressed_data_bytes as f64 / self.plt_table_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::item::Item;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn build(db: &[Vec<Item>], min_sup: Support) -> Plt {
        construct(db, min_sup, ConstructOptions::conditional()).unwrap()
    }

    #[test]
    fn round_trip_table1() {
        let plt = build(&table1(), 2);
        let compressed = CompressedPlt::from_plt(&plt);
        assert_eq!(compressed.num_vectors(), plt.num_vectors());
        let back = compressed.to_plt();
        assert_eq!(back.num_vectors(), plt.num_vectors());
        assert_eq!(back.num_transactions(), plt.num_transactions());
        for (v, e) in plt.iter() {
            assert_eq!(back.vector_frequency(v), e.freq);
        }
    }

    #[test]
    fn round_trip_many_blocks() {
        // > BLOCK distinct vectors per partition to exercise restarts and
        // front coding.
        let db: Vec<Vec<Item>> = (0..300u32)
            .map(|i| vec![i % 20, 20 + (i % 15), 40 + (i % 11)])
            .collect();
        let plt = build(&db, 1);
        let compressed = CompressedPlt::from_plt(&plt);
        let back = compressed.to_plt();
        assert_eq!(back.num_vectors(), plt.num_vectors());
        for (v, e) in plt.iter() {
            assert_eq!(back.vector_frequency(v), e.freq, "{v}");
        }
    }

    #[test]
    fn sum_index_fetches_conditional_database() {
        let plt = build(&table1(), 2);
        let compressed = CompressedPlt::from_plt(&plt);
        let mut cd = compressed.vectors_with_sum(4);
        cd.sort();
        let mut expect: Vec<(PositionVector, Support)> = plt
            .iter()
            .filter(|(_, e)| e.sum == 4)
            .map(|(v, e)| (v.clone(), e.freq))
            .collect();
        expect.sort();
        assert_eq!(cd, expect);
        assert!(compressed.vectors_with_sum(99).is_empty());
    }

    #[test]
    fn random_access_equals_streaming() {
        let db: Vec<Vec<Item>> = (0..200u32)
            .map(|i| vec![i % 10, 10 + (i % 9), 19 + (i % 8), 27 + (i % 7)])
            .collect();
        let plt = build(&db, 1);
        let compressed = CompressedPlt::from_plt(&plt);
        for p in &compressed.partitions {
            let streamed: Vec<_> = p.iter().collect();
            for (ordinal, entry) in streamed.iter().enumerate() {
                assert_eq!(&p.decode_at(ordinal as u32), entry);
            }
        }
    }

    #[test]
    fn compression_beats_flat_encoding() {
        // Dense-ish data with small deltas: varint + front coding must
        // be well under 4 bytes per position.
        let db: Vec<Vec<Item>> = (0..500u32)
            .map(|i| {
                (0..8u32)
                    .filter(|b| (i >> b) & 1 == 1 || b % 2 == 0)
                    .collect()
            })
            .collect();
        let plt = build(&db, 1);
        let report = CompressedPlt::report(&plt, db.iter().map(Vec::len).sum());
        assert!(report.compressed_data_bytes > 0);
        assert!(
            report.ratio_vs_table() < 0.5,
            "expected >2x vs table, got ratio {}",
            report.ratio_vs_table()
        );
        assert!(report.ratio_vs_raw() < 1.0, "should beat the raw database");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Compression round-trips exactly on random databases, and
            /// the sum index agrees with a direct filter, for any
            /// min-support.
            #[test]
            fn prop_round_trip_and_index(
                db in proptest::collection::vec(
                    proptest::collection::btree_set(0u32..30, 1..8),
                    1..60,
                ),
                min_sup in 1u64..4,
            ) {
                let db: Vec<Vec<Item>> = db.into_iter()
                    .map(|t| t.into_iter().collect())
                    .collect();
                let plt = build(&db, min_sup);
                let compressed = CompressedPlt::from_plt(&plt);
                let back = compressed.to_plt();
                prop_assert_eq!(back.num_vectors(), plt.num_vectors());
                for (v, e) in plt.iter() {
                    prop_assert_eq!(back.vector_frequency(v), e.freq);
                }
                for j in 1..=plt.ranking().len() as u32 {
                    let mut got = compressed.vectors_with_sum(j);
                    got.sort();
                    let mut expect: Vec<(PositionVector, Support)> = plt
                        .iter()
                        .filter(|(_, e)| e.sum == j)
                        .map(|(v, e)| (v.clone(), e.freq))
                        .collect();
                    expect.sort();
                    prop_assert_eq!(got, expect);
                }
            }
        }
    }

    #[test]
    fn empty_plt_compresses_to_nothing() {
        let plt = build(&[], 1);
        let c = CompressedPlt::from_plt(&plt);
        assert_eq!(c.num_vectors(), 0);
        assert_eq!(c.data_bytes(), 0);
        assert_eq!(c.to_plt().num_vectors(), 0);
    }
}
