//! X10 — power-law (retail/click-log) sweep over the skew exponent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_baselines::{EclatMiner, FpGrowthMiner, HMineMiner};
use plt_bench::datasets;
use plt_core::miner::Miner;
use plt_core::{ConditionalMiner, HybridMiner};

fn bench(c: &mut Criterion) {
    let n = 2_000usize;
    let min_sup = ((0.01 * n as f64).ceil() as u64).max(1);
    let miners: Vec<Box<dyn Miner>> = vec![
        Box::new(ConditionalMiner::default()),
        Box::new(HybridMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(EclatMiner::default()),
        Box::new(HMineMiner),
    ];
    for exponent in [0.8f64, 1.1, 1.5] {
        let db = datasets::zipf(n, exponent);
        let mut group = c.benchmark_group(format!("x10/zipf{exponent:.1}"));
        group.sample_size(10);
        for miner in &miners {
            group.bench_with_input(BenchmarkId::from_parameter(miner.name()), &db, |b, db| {
                b.iter(|| miner.mine(db, min_sup))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
