//! FIMI `.dat` format I/O.
//!
//! The Frequent Itemset Mining Implementations repository format — one
//! transaction per line, items as whitespace-separated decimal integers —
//! is the lingua franca of the datasets the paper's comparators were
//! evaluated on (the paper cites FIMI'03 twice). Readers are buffered and
//! reuse a line buffer per the I/O guidance in the Rust Performance Book.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::transaction::{Item, TransactionDb};

/// Parses FIMI-format text from any reader.
///
/// Blank lines become empty transactions; a line that fails integer parsing
/// aborts with `InvalidData` naming the line.
pub fn read<R: Read>(reader: R) -> io::Result<TransactionDb> {
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut transactions = Vec::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let mut t: Vec<Item> = Vec::new();
        for tok in line.split_ascii_whitespace() {
            let item = tok.parse::<Item>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {lineno}: bad item {tok:?}: {e}"),
                )
            })?;
            t.push(item);
        }
        transactions.push(t);
    }
    Ok(TransactionDb::new(transactions))
}

/// Reads a FIMI file from disk.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<TransactionDb> {
    read(std::fs::File::open(path)?)
}

/// Writes a database in FIMI format.
pub fn write<W: Write>(writer: W, db: &TransactionDb) -> io::Result<()> {
    let mut out = BufWriter::new(writer);
    for t in db.transactions() {
        let mut first = true;
        for &item in t {
            if !first {
                out.write_all(b" ")?;
            }
            write!(out, "{item}")?;
            first = false;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Writes a FIMI file to disk.
pub fn write_file<P: AsRef<Path>>(path: P, db: &TransactionDb) -> io::Result<()> {
    write(std::fs::File::create(path)?, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_format() {
        let text = "1 2 3\n4 5\n\n7\n";
        let db = read(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 4);
        assert_eq!(db.transactions()[0], vec![1, 2, 3]);
        assert_eq!(db.transactions()[1], vec![4, 5]);
        assert_eq!(db.transactions()[2], Vec::<Item>::new());
        assert_eq!(db.transactions()[3], vec![7]);
    }

    #[test]
    fn tolerates_extra_whitespace_and_no_trailing_newline() {
        let text = "  1\t 2  \n3 4";
        let db = read(text.as_bytes()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.transactions()[1], vec![3, 4]);
    }

    #[test]
    fn normalises_duplicates_and_order() {
        let db = read("3 1 3 2\n".as_bytes()).unwrap();
        assert_eq!(db.transactions()[0], vec![1, 2, 3]);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let err = read("1 2\nx y\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn round_trips() {
        let db = TransactionDb::new(vec![vec![1, 2, 3], vec![], vec![42]]);
        let mut bytes = Vec::new();
        write(&mut bytes, &db).unwrap();
        assert_eq!(String::from_utf8(bytes.clone()).unwrap(), "1 2 3\n\n42\n");
        let back = read(bytes.as_slice()).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("plt-fimi-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dat");
        let db = TransactionDb::new(vec![vec![9, 8], vec![1]]);
        write_file(&path, &db).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, db);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_is_empty_db() {
        let db = read("".as_bytes()).unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn rejects_items_overflowing_u32() {
        let err = read("1 99999999999999\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_negative_items() {
        assert!(read("3 -1\n".as_bytes()).is_err());
    }

    #[test]
    fn accepts_max_u32() {
        let db = read(format!("{}\n", u32::MAX).as_bytes()).unwrap();
        assert_eq!(db.transactions()[0], vec![u32::MAX]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// write ∘ read is the identity on normalised databases.
            #[test]
            fn prop_round_trip(
                db in proptest::collection::vec(
                    proptest::collection::btree_set(0u32..10_000, 0..12),
                    0..40,
                )
            ) {
                let db = TransactionDb::new(
                    db.into_iter().map(|t| t.into_iter().collect()).collect(),
                );
                let mut bytes = Vec::new();
                write(&mut bytes, &db).unwrap();
                let back = read(bytes.as_slice()).unwrap();
                prop_assert_eq!(back, db);
            }
        }
    }
}
