//! # plt-rules — association-rule generation
//!
//! The second step of the paper's problem statement (§2): given the
//! frequent itemsets, enumerate all implications `X → Y` (`X ∩ Y = ∅`,
//! `X ∪ Y` frequent) whose confidence
//! `conf = support(X ∪ Y) / support(X)` meets a threshold. "Once the
//! frequent itemsets are determined, generating the rules is
//! straightforward" — straightforward, but worth doing right: this crate
//! implements the *ap-genrules* procedure of Agrawal & Srikant, which
//! prunes consequent supersets once a consequent fails (confidence is
//! anti-monotone in the consequent), rather than testing all `2^k`
//! splits.
//!
//! Every rule carries the standard interestingness measures: confidence,
//! lift, leverage and conviction.

pub mod nonredundant;

pub use nonredundant::{confidence_improvement, productive_rules};

use plt_core::item::{Itemset, Support};
use plt_core::miner::MiningResult;

/// An association rule `antecedent → consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Left-hand side `X` (non-empty).
    pub antecedent: Itemset,
    /// Right-hand side `Y` (non-empty, disjoint from `X`).
    pub consequent: Itemset,
    /// `support(X ∪ Y)` — absolute count.
    pub support: Support,
    /// `support(X ∪ Y) / support(X)`.
    pub confidence: f64,
    /// `confidence / P(Y)`: how much more often `Y` appears with `X` than
    /// alone. 1.0 = independent.
    pub lift: f64,
    /// `P(X ∪ Y) − P(X)·P(Y)`.
    pub leverage: f64,
    /// `(1 − P(Y)) / (1 − confidence)`; `+∞` for exact rules.
    pub conviction: f64,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} => {}  (sup={}, conf={:.3}, lift={:.2})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

/// Rule-generation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleConfig {
    /// Minimum confidence in `[0, 1]`.
    pub min_confidence: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            min_confidence: 0.5,
        }
    }
}

/// Generates all rules meeting `config.min_confidence` from a mining
/// result.
///
/// Requires the result to be subset-closed (every miner in this workspace
/// produces closed results — the anti-monotone property guarantees it);
/// missing subset supports are a logic error and panic.
///
/// # Examples
///
/// ```
/// use plt_core::{ConditionalMiner, Miner};
/// use plt_rules::{generate_rules, RuleConfig};
///
/// let db = vec![vec![1, 2], vec![1, 2], vec![1, 2], vec![1]];
/// let result = ConditionalMiner::default().mine(&db, 2);
/// let rules = generate_rules(&result, RuleConfig { min_confidence: 0.9 });
/// // {2} → {1} holds with confidence 1.0; {1} → {2} only 0.75.
/// assert_eq!(rules.len(), 1);
/// assert_eq!(rules[0].antecedent.items(), &[2]);
/// assert!((rules[0].confidence - 1.0).abs() < 1e-12);
/// ```
pub fn generate_rules(result: &MiningResult, config: RuleConfig) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&config.min_confidence),
        "confidence is a probability"
    );
    let mut rules = Vec::new();
    for (itemset, support) in result.iter() {
        if itemset.len() < 2 {
            continue;
        }
        rules.extend(rules_for_itemset(itemset, support, result, config));
    }
    rules
}

/// The per-itemset *ap-genrules* step: all rules splitting `itemset`
/// (whose support is `support`) that meet the confidence threshold.
/// `result` serves the subset-support lookups and must be subset-closed
/// over `itemset`. Exposed so parallel callers can fan out per itemset.
pub fn rules_for_itemset(
    itemset: &Itemset,
    support: Support,
    result: &MiningResult,
    config: RuleConfig,
) -> Vec<Rule> {
    let n = result.num_transactions() as f64;
    let mut rules = Vec::new();
    if itemset.len() < 2 {
        return rules;
    }
    // Level 1: single-item consequents.
    let mut consequents: Vec<Itemset> = Vec::new();
    for &item in itemset.items() {
        let consequent = Itemset::from_sorted(vec![item]);
        if let Some(rule) = try_rule(itemset, &consequent, support, result, config, n) {
            rules.push(rule);
            consequents.push(consequent);
        }
    }
    // Levels 2..: grow consequents apriori-style from the survivors.
    let mut m = 1;
    while !consequents.is_empty() && itemset.len() > m + 1 {
        let candidates = join_consequents(&consequents);
        consequents.clear();
        for consequent in candidates {
            if let Some(rule) = try_rule(itemset, &consequent, support, result, config, n) {
                rules.push(rule);
                consequents.push(consequent);
            }
        }
        m += 1;
    }
    rules
}

/// Builds the rule `itemset \ consequent → consequent` if it passes the
/// confidence threshold.
fn try_rule(
    itemset: &Itemset,
    consequent: &Itemset,
    support: Support,
    result: &MiningResult,
    config: RuleConfig,
    n: f64,
) -> Option<Rule> {
    let antecedent = itemset.difference(consequent);
    debug_assert!(!antecedent.is_empty() && !consequent.is_empty());
    let sup_x = result
        .support(antecedent.items())
        .expect("mining results are subset-closed");
    let confidence = support as f64 / sup_x as f64;
    if confidence < config.min_confidence {
        return None;
    }
    let sup_y = result
        .support(consequent.items())
        .expect("mining results are subset-closed");
    let p_y = sup_y as f64 / n;
    let lift = confidence / p_y;
    let leverage = support as f64 / n - (sup_x as f64 / n) * p_y;
    let conviction = if confidence >= 1.0 {
        f64::INFINITY
    } else {
        (1.0 - p_y) / (1.0 - confidence)
    };
    Some(Rule {
        antecedent,
        consequent: consequent.clone(),
        support,
        confidence,
        lift,
        leverage,
        conviction,
    })
}

/// Apriori-style join of same-size consequents sharing all but their last
/// item (inputs and outputs sorted itemsets).
fn join_consequents(level: &[Itemset]) -> Vec<Itemset> {
    let mut out = Vec::new();
    for (i, a) in level.iter().enumerate() {
        for b in &level[i + 1..] {
            let (ia, ib) = (a.items(), b.items());
            let k = ia.len();
            if ia[..k - 1] == ib[..k - 1] && ia[k - 1] < ib[k - 1] {
                let mut items = ia.to_vec();
                items.push(ib[k - 1]);
                out.push(Itemset::from_sorted(items));
            }
        }
    }
    out
}

/// Sorts rules for presentation: by confidence, then lift, then support,
/// all descending; ties broken by the rule text for determinism.
pub fn sort_rules(rules: &mut [Rule]) {
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.lift.total_cmp(&a.lift))
            .then(b.support.cmp(&a.support))
            .then_with(|| {
                (a.antecedent.clone(), a.consequent.clone())
                    .cmp(&(b.antecedent.clone(), b.consequent.clone()))
            })
    });
}

/// Convenience: generate, sort, and keep the best `k` rules.
pub fn top_rules(result: &MiningResult, config: RuleConfig, k: usize) -> Vec<Rule> {
    let mut rules = generate_rules(result, config);
    sort_rules(&mut rules);
    rules.truncate(k);
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::item::Item;
    use plt_core::miner::{BruteForceMiner, Miner};

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn mined() -> MiningResult {
        BruteForceMiner.mine(&table1(), 2)
    }

    fn find<'a>(rules: &'a [Rule], x: &[Item], y: &[Item]) -> Option<&'a Rule> {
        rules
            .iter()
            .find(|r| r.antecedent.items() == x && r.consequent.items() == y)
    }

    #[test]
    fn exact_rule_has_confidence_one_and_infinite_conviction() {
        // A ⊆ every transaction that contains A also contains B:
        // sup(AB)=4 = sup(A) → conf(A→B) = 1.
        let rules = generate_rules(
            &mined(),
            RuleConfig {
                min_confidence: 0.9,
            },
        );
        let r = find(&rules, &[0], &[1]).expect("A→B");
        assert!((r.confidence - 1.0).abs() < 1e-12);
        assert_eq!(r.support, 4);
        assert!(r.conviction.is_infinite());
        // lift = 1.0 / (5/6)
        assert!((r.lift - 6.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        // conf(B→D) = sup(BD)/sup(B) = 3/5 = 0.6.
        let loose = generate_rules(
            &mined(),
            RuleConfig {
                min_confidence: 0.55,
            },
        );
        assert!(find(&loose, &[1], &[3]).is_some());
        let strict = generate_rules(
            &mined(),
            RuleConfig {
                min_confidence: 0.65,
            },
        );
        assert!(find(&strict, &[1], &[3]).is_none());
    }

    #[test]
    fn all_rules_meet_threshold_and_metrics_are_consistent() {
        let result = mined();
        let n = result.num_transactions() as f64;
        let rules = generate_rules(
            &result,
            RuleConfig {
                min_confidence: 0.5,
            },
        );
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(r.confidence >= 0.5 && r.confidence <= 1.0 + 1e-12);
            assert!(r.antecedent.intersection(&r.consequent).is_empty());
            let z = r.antecedent.union(&r.consequent);
            assert_eq!(result.support(z.items()), Some(r.support));
            let sup_x = result.support(r.antecedent.items()).unwrap();
            assert!((r.confidence - r.support as f64 / sup_x as f64).abs() < 1e-12);
            let sup_y = result.support(r.consequent.items()).unwrap() as f64;
            assert!((r.lift - r.confidence / (sup_y / n)).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        // Compare ap-genrules against brute-force enumeration of every
        // (antecedent, consequent) split of every frequent itemset.
        let result = mined();
        let config = RuleConfig {
            min_confidence: 0.6,
        };
        let fast = {
            let mut r = generate_rules(&result, config);
            sort_rules(&mut r);
            r
        };
        let mut slow: Vec<Rule> = Vec::new();
        for (z, support) in result.iter() {
            if z.len() < 2 {
                continue;
            }
            for consequent in z.subsets() {
                if consequent.len() == z.len() || consequent.is_empty() {
                    continue;
                }
                let n = result.num_transactions() as f64;
                if let Some(rule) = try_rule(z, &consequent, support, &result, config, n) {
                    slow.push(rule);
                }
            }
        }
        sort_rules(&mut slow);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.antecedent, b.antecedent);
            assert_eq!(a.consequent, b.consequent);
            assert!((a.confidence - b.confidence).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_item_consequents_are_generated() {
        // conf(A → BC) = sup(ABC)/sup(A) = 3/4.
        let rules = generate_rules(
            &mined(),
            RuleConfig {
                min_confidence: 0.7,
            },
        );
        let r = find(&rules, &[0], &[1, 2]).expect("A→BC");
        assert!((r.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_confidence_emits_every_split() {
        let result = mined();
        let rules = generate_rules(
            &result,
            RuleConfig {
                min_confidence: 0.0,
            },
        );
        // Σ over frequent k-itemsets (k≥2) of (2^k − 2) splits:
        // six 2-itemsets → 6·2 = 12; three 3-itemsets → 3·6 = 18.
        assert_eq!(rules.len(), 30);
    }

    #[test]
    fn top_rules_truncates_sorted() {
        let rules = top_rules(
            &mined(),
            RuleConfig {
                min_confidence: 0.1,
            },
            5,
        );
        assert_eq!(rules.len(), 5);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn no_rules_from_singletons() {
        let db = vec![vec![1], vec![1], vec![2]];
        let result = BruteForceMiner.mine(&db, 1);
        assert!(generate_rules(&result, RuleConfig::default()).is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range_confidence() {
        generate_rules(
            &mined(),
            RuleConfig {
                min_confidence: 1.5,
            },
        );
    }

    #[test]
    fn display_is_readable() {
        let rules = generate_rules(
            &mined(),
            RuleConfig {
                min_confidence: 0.9,
            },
        );
        let text = rules[0].to_string();
        assert!(text.contains("=>"));
        assert!(text.contains("conf="));
    }
}
