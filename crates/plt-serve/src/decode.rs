//! Incremental frame codec for nonblocking connections.
//!
//! [`FrameDecoder`] consumes the same `<len>\n<payload>\n` framing as
//! the blocking [`read_frame_limited`](crate::proto::read_frame_limited)
//! but from arbitrary byte chunks: a reactor feeds it whatever a
//! nonblocking read returned — half a header, three frames and a
//! fragment, one byte — and pops complete frames as they materialize.
//! The contract, enforced by the `serve_proto` differential proptest, is
//! byte-identical agreement with the blocking codec: the same stream
//! yields the same frame sequence, and malformed input produces the same
//! `InvalidData` error *messages* (they are sent to peers as error
//! frames, so the text is part of the protocol surface).
//!
//! [`encode_frame`] / [`encode_frame_with`] are the write-side duals:
//! they render a frame to owned bytes the connection drains through
//! partial writes, mirroring `write_frame_with`'s fault injection
//! (a torn frame truncates the bytes; an oversized one lies in the
//! header — both mark the connection for closure after the flush).

use crate::fault::{FaultPlan, FrameFault, Site};
use crate::proto::MAX_FRAME_BYTES;

/// Longest accepted length header, including its newline. The blocking
/// codec's `read_line` is unbounded here; a nonblocking decoder must cap
/// buffering for a peer that never sends the newline. 4096 admits any
/// genuine header (a `usize` is at most 20 digits) with room for absurd
/// whitespace padding, while bounding header memory per connection.
pub const MAX_HEADER_BYTES: usize = 4096;

#[derive(Debug)]
enum State {
    /// Accumulating the length line.
    Header,
    /// Header parsed; waiting for `len` payload bytes + trailing newline.
    Payload { len: usize },
    /// A framing error was reported; the connection is unrecoverable.
    Poisoned,
}

/// Push-based decoder: [`push`](Self::push) raw bytes in,
/// [`next_frame`](Self::next_frame) complete frames out.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    state: State,
    max_frame: usize,
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl FrameDecoder {
    pub fn new(max_frame: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            state: State::Header,
            max_frame,
        }
    }

    /// Decoder with the protocol-default frame limit.
    pub fn with_default_limit() -> FrameDecoder {
        FrameDecoder::new(MAX_FRAME_BYTES)
    }

    /// Bytes buffered but not yet decoded (backpressure signal).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete frame, if the buffer holds one.
    ///
    /// * `Ok(Some(payload))` — one full frame decoded and consumed.
    /// * `Ok(None)` — need more bytes; call again after `push`.
    /// * `Err(InvalidData)` — framing violation; message matches the
    ///   blocking codec and should be sent as an error frame before
    ///   closing. The decoder is poisoned afterwards.
    pub fn next_frame(&mut self) -> std::io::Result<Option<String>> {
        loop {
            match self.state {
                State::Poisoned => {
                    return Err(invalid("frame decoder poisoned by earlier error".into()))
                }
                State::Header => {
                    let probe = &self.buf[..self.buf.len().min(MAX_HEADER_BYTES)];
                    let Some(nl) = probe.iter().position(|&b| b == b'\n') else {
                        if self.buf.len() >= MAX_HEADER_BYTES {
                            self.state = State::Poisoned;
                            return Err(invalid(format!(
                                "frame header exceeds {MAX_HEADER_BYTES} bytes"
                            )));
                        }
                        return Ok(None);
                    };
                    // Keep the newline in the lossy rendering: the
                    // blocking codec's `read_line` includes it, and its
                    // error text is part of the protocol surface.
                    let header = String::from_utf8_lossy(&self.buf[..=nl]).into_owned();
                    let Ok(len) = header.trim().parse::<usize>() else {
                        self.state = State::Poisoned;
                        return Err(invalid(format!("invalid frame header {header:?}")));
                    };
                    if len > self.max_frame {
                        self.state = State::Poisoned;
                        return Err(invalid(format!("frame of {len} bytes exceeds limit")));
                    }
                    self.buf.drain(..=nl);
                    self.state = State::Payload { len };
                }
                State::Payload { len } => {
                    // Payload plus its trailing newline.
                    if self.buf.len() < len + 1 {
                        return Ok(None);
                    }
                    if self.buf[len] != b'\n' {
                        self.state = State::Poisoned;
                        return Err(invalid("frame missing trailing newline".into()));
                    }
                    let payload = self.buf[..len].to_vec();
                    self.buf.drain(..=len);
                    self.state = State::Header;
                    return match String::from_utf8(payload) {
                        Ok(s) => Ok(Some(s)),
                        Err(_) => {
                            self.state = State::Poisoned;
                            Err(invalid("frame is not utf-8".into()))
                        }
                    };
                }
            }
        }
    }

    /// Settles the stream at EOF, mirroring what the blocking codec does
    /// with the same trailing bytes:
    ///
    /// * empty buffer at a frame boundary — clean close, `Ok(false)`;
    /// * a headerless fragment that parses as a length (`read_line`
    ///   returns partial lines at EOF) — truncated frame, `Ok(true)`:
    ///   the blocking side fails with `UnexpectedEof`, which is *not* an
    ///   `InvalidData` protocol error, so no error frame is owed;
    /// * a fragment that does not parse — `Err(InvalidData)` with the
    ///   blocking codec's message, error frame owed;
    /// * mid-payload — truncated frame, `Ok(true)`.
    pub fn finish(&mut self) -> std::io::Result<bool> {
        match self.state {
            State::Poisoned => Ok(true),
            State::Payload { .. } => Ok(true),
            State::Header => {
                if self.buf.is_empty() {
                    return Ok(false);
                }
                let header = String::from_utf8_lossy(&self.buf).into_owned();
                let Ok(len) = header.trim().parse::<usize>() else {
                    self.state = State::Poisoned;
                    return Err(invalid(format!("invalid frame header {header:?}")));
                };
                if len > self.max_frame {
                    self.state = State::Poisoned;
                    return Err(invalid(format!("frame of {len} bytes exceeds limit")));
                }
                Ok(true)
            }
        }
    }
}

/// Renders one clean frame to owned bytes.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    debug_assert!(!payload.contains('\n'), "payloads are single-line JSON");
    format!("{}\n{}\n", payload.len(), payload).into_bytes()
}

/// Renders one frame under a fault plan, mirroring
/// [`write_frame_with`](crate::proto::write_frame_with): returns the
/// bytes to put on the wire and whether the connection must be closed
/// once they flush (a torn or oversized frame leaves the stream
/// unparseable, exactly like the blocking writer erroring out).
pub fn encode_frame_with(payload: &str, fault: Option<(&FaultPlan, Site)>) -> (Vec<u8>, bool) {
    if let Some((plan, site)) = fault {
        let encoded = format!("{}\n{}\n", payload.len(), payload);
        match plan.frame_fault(site, encoded.len()) {
            Some(FrameFault::Torn { keep }) => {
                let keep = keep.min(encoded.len().saturating_sub(1));
                return (encoded.into_bytes()[..keep].to_vec(), true);
            }
            Some(FrameFault::Oversized) => {
                let bytes = format!("{}\n{}\n", MAX_FRAME_BYTES + 1, payload).into_bytes();
                return (bytes, true);
            }
            None => {}
        }
    }
    (encode_frame(payload), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{read_frame_limited, write_frame};

    #[test]
    fn whole_frames_decode() {
        let mut d = FrameDecoder::with_default_limit();
        d.push(b"4\nping\n13\n{\"op\":\"ping\"}\n");
        assert_eq!(d.next_frame().unwrap().as_deref(), Some("ping"));
        assert_eq!(d.next_frame().unwrap().as_deref(), Some(r#"{"op":"ping"}"#));
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(!d.finish().unwrap(), "clean boundary");
    }

    #[test]
    fn one_byte_at_a_time_decodes_identically() {
        let mut clean = Vec::new();
        write_frame(&mut clean, r#"{"op":"stats"}"#).unwrap();
        write_frame(&mut clean, "x").unwrap();
        let mut d = FrameDecoder::with_default_limit();
        let mut out = Vec::new();
        for &b in &clean {
            d.push(&[b]);
            while let Some(f) = d.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, vec![r#"{"op":"stats"}"#.to_string(), "x".to_string()]);
    }

    #[test]
    fn error_messages_match_the_blocking_codec() {
        // Each malformed stream must produce the same message through
        // both codecs — peers see this text in error frames.
        let cases: Vec<&[u8]> = vec![
            b"notanumber\n{}\n",
            b"2\nxyz\n",    // payload followed by junk, no newline at [len]
            b"3\nab\xff\n", // invalid utf-8 payload
            b"99999999999999999999999999\n", // unparseable (overflow) header
        ];
        for stream in cases {
            let mut r = std::io::Cursor::new(stream.to_vec());
            let blocking = read_frame_limited(&mut r, 64).unwrap_err();
            let mut d = FrameDecoder::new(64);
            d.push(stream);
            let incremental = loop {
                match d.next_frame() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break d.finish().unwrap_err(),
                    Err(e) => break e,
                }
            };
            assert_eq!(blocking.kind(), incremental.kind());
            assert_eq!(blocking.to_string(), incremental.to_string());
        }
    }

    #[test]
    fn oversized_header_is_rejected_before_payload_allocation() {
        let mut d = FrameDecoder::new(16);
        d.push(b"17\n");
        let err = d.next_frame().unwrap_err();
        assert!(err.to_string().contains("exceeds limit"), "{err}");
        // Poisoned thereafter.
        d.push(b"4\nping\n");
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn runaway_header_is_capped() {
        let mut d = FrameDecoder::with_default_limit();
        d.push(&vec![b'9'; MAX_HEADER_BYTES + 10]);
        let err = d.next_frame().unwrap_err();
        assert!(err.to_string().contains("header exceeds"), "{err}");
    }

    #[test]
    fn eof_mid_frame_is_truncation_not_protocol_error() {
        // Parsable partial header: blocking fails UnexpectedEof (no
        // error frame); incremental reports truncation the same way.
        let mut d = FrameDecoder::with_default_limit();
        d.push(b"12");
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.finish().unwrap(), "truncated");
        // Mid-payload.
        let mut d = FrameDecoder::with_default_limit();
        d.push(b"5\nab");
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(d.finish().unwrap(), "truncated");
        // Garbage partial header: protocol error, frame owed.
        let mut d = FrameDecoder::with_default_limit();
        d.push(b"nope");
        assert_eq!(d.next_frame().unwrap(), None);
        let err = d.finish().unwrap_err();
        assert!(err.to_string().contains("invalid frame header"), "{err}");
    }

    #[test]
    fn encoder_matches_blocking_writer() {
        let mut blocking = Vec::new();
        write_frame(&mut blocking, r#"{"ok":true}"#).unwrap();
        assert_eq!(encode_frame(r#"{"ok":true}"#), blocking);
    }

    #[test]
    fn faulty_encoder_mirrors_write_frame_with() {
        use crate::fault::FaultConfig;
        let plan = FaultPlan::new(FaultConfig {
            torn_frame: 1.0,
            ..FaultConfig::disabled(5)
        });
        let (bytes, close) =
            encode_frame_with(r#"{"op":"ping"}"#, Some((&plan, Site::ServerWrite)));
        assert!(close);
        let clean = encode_frame(r#"{"op":"ping"}"#);
        assert!(!bytes.is_empty() && bytes.len() < clean.len());
        assert_eq!(&clean[..bytes.len()], &bytes[..]);

        let plan = FaultPlan::new(FaultConfig {
            oversized_frame: 1.0,
            ..FaultConfig::disabled(5)
        });
        let (bytes, close) = encode_frame_with("{}", Some((&plan, Site::ServerWrite)));
        assert!(close);
        let mut d = FrameDecoder::with_default_limit();
        d.push(&bytes);
        assert!(d
            .next_frame()
            .unwrap_err()
            .to_string()
            .contains("exceeds limit"));

        let (bytes, close) = encode_frame_with("{}", None);
        assert!(!close);
        assert_eq!(bytes, encode_frame("{}"));
    }
}
