//! Eclat / dEclat — vertical mining by TID-set intersection (Zaki, TKDE
//! 2000, the paper's reference \[12\]; diffsets from Zaki & Gouda, KDD'03,
//! reference \[16\]).
//!
//! The database is turned into per-item TID lists; the support of
//! `P ∪ {x, y}` is the size of the intersection of the TID lists of
//! `P ∪ {x}` and `P ∪ {y}`. The search is a depth-first walk over
//! equivalence classes sharing a prefix.
//!
//! With **diffsets**, a class member stores the TIDs its prefix has but it
//! does not: `d(Pxy) = t(Px) \ t(Py)` at the first level and
//! `d(Pxy) = d(Py) \ d(Px)` below, with
//! `support(Pxy) = support(Px) − |d(Pxy)|`. Dense data makes diffsets much
//! smaller than tidsets — the classic trade measured in experiment X1.

use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_data::transaction::TransactionDb;
use plt_data::vertical::{Tid, VerticalDb};

/// The Eclat miner.
#[derive(Debug, Clone, Copy, Default)]
pub struct EclatMiner {
    /// Switch to diffsets below the first level (dEclat).
    pub use_diffsets: bool,
}

impl EclatMiner {
    /// The dEclat variant.
    pub fn with_diffsets() -> Self {
        EclatMiner { use_diffsets: true }
    }
}

/// One member of an equivalence class: the extending item, its TID-list or
/// diffset, and its exact support.
#[derive(Debug, Clone)]
struct Member {
    item: Item,
    /// TID set (`diffset == false`) or diffset against the class prefix.
    tids: Vec<Tid>,
    support: Support,
}

impl Miner for EclatMiner {
    fn name(&self) -> &'static str {
        if self.use_diffsets {
            "declat"
        } else {
            "eclat"
        }
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);
        let db = TransactionDb::from_sorted(transactions.to_vec());
        let vertical = VerticalDb::from_horizontal(&db);

        // Root class: frequent items with their tidsets, ordered by
        // ascending support (the standard Eclat ordering: small classes
        // first keeps intermediate sets small).
        let mut root: Vec<Member> = vertical
            .columns()
            .filter(|(_, tids)| tids.len() as Support >= min_support)
            .map(|(item, tids)| Member {
                item,
                tids: tids.to_vec(),
                support: tids.len() as Support,
            })
            .collect();
        root.sort_by(|a, b| a.support.cmp(&b.support).then(a.item.cmp(&b.item)));

        for m in &root {
            result.insert(Itemset::from_sorted(vec![m.item]), m.support);
        }

        let mut prefix: Vec<Item> = Vec::new();
        // The root level always holds tidsets; diffsets begin one level in.
        self.extend_class(&root, false, min_support, &mut prefix, &mut result);
        result
    }
}

impl EclatMiner {
    /// Recursively extends an equivalence class. `diffset_mode` says how
    /// the *members'* tid vectors are to be interpreted.
    fn extend_class(
        &self,
        class: &[Member],
        diffset_mode: bool,
        min_support: Support,
        prefix: &mut Vec<Item>,
        result: &mut MiningResult,
    ) {
        for i in 0..class.len() {
            let a = &class[i];
            prefix.push(a.item);
            let mut child: Vec<Member> = Vec::new();
            for b in &class[i + 1..] {
                let (tids, support) = if self.use_diffsets {
                    if diffset_mode {
                        // d(Pab) = d(Pb) \ d(Pa); support = sup(Pa) − |d|.
                        let d = VerticalDb::difference(&b.tids, &a.tids);
                        let support = a.support - d.len() as Support;
                        (d, support)
                    } else {
                        // Transition level: members hold tidsets;
                        // d(ab) = t(a) \ t(b); support = sup(a) − |d|.
                        let d = VerticalDb::difference(&a.tids, &b.tids);
                        let support = a.support - d.len() as Support;
                        (d, support)
                    }
                } else {
                    let t = VerticalDb::intersect(&a.tids, &b.tids);
                    let support = t.len() as Support;
                    (t, support)
                };
                if support >= min_support {
                    let mut items = prefix.clone();
                    items.push(b.item);
                    result.insert(Itemset::new(items), support);
                    child.push(Member {
                        item: b.item,
                        tids,
                        support,
                    });
                }
            }
            if !child.is_empty() {
                self.extend_class(&child, self.use_diffsets, min_support, prefix, result);
            }
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn tidset_variant_matches_brute_force() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = EclatMiner::default().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn diffset_variant_matches_brute_force() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        let got = EclatMiner::with_diffsets().mine(&table1(), 2);
        assert_eq!(got.sorted(), expect.sorted());
    }

    #[test]
    fn diffsets_and_tidsets_agree_at_min_support_one() {
        let a = EclatMiner::default().mine(&table1(), 1);
        let b = EclatMiner::with_diffsets().mine(&table1(), 1);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(EclatMiner::default().mine(&[], 1).is_empty());
        assert!(EclatMiner::with_diffsets().mine(&table1(), 10).is_empty());
    }

    #[test]
    fn dense_db_deep_lattice() {
        let db = vec![vec![1, 2, 3, 4]; 5];
        for miner in [EclatMiner::default(), EclatMiner::with_diffsets()] {
            let r = miner.mine(&db, 3);
            assert_eq!(r.len(), 15);
            assert_eq!(r.support(&[1, 2, 3, 4]), Some(5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Both Eclat variants agree with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..15, 1..7),
                1..40,
            ),
            min_support in 1u64..6,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let tid = EclatMiner::default().mine(&db, min_support);
            let diff = EclatMiner::with_diffsets().mine(&db, min_support);
            prop_assert_eq!(tid.sorted(), expect.sorted());
            prop_assert_eq!(diff.sorted(), expect.sorted());
        }
    }
}
