//! Name ↔ id catalog so examples can mine over human-readable items
//! ("bread", "milk") while the miners stay on dense `u32` ids.

use std::collections::HashMap;

use crate::transaction::Item;

/// A bidirectional mapping between item names and dense ids `0..n`.
#[derive(Debug, Clone, Default)]
pub struct ItemCatalog {
    ids: HashMap<String, Item>,
    names: Vec<String>,
}

impl ItemCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        ItemCatalog::default()
    }

    /// Returns the id for `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> Item {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as Item;
        self.ids.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }

    /// Looks up an existing id without interning.
    pub fn id(&self, name: &str) -> Option<Item> {
        self.ids.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: Item) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned items.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing was interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Encodes a transaction of names to ids, interning new names.
    pub fn encode(&mut self, names: &[&str]) -> Vec<Item> {
        names.iter().map(|n| self.intern(n)).collect()
    }

    /// Decodes ids back to names; unknown ids render as `#id`.
    pub fn decode(&self, items: &[Item]) -> Vec<String> {
        items
            .iter()
            .map(|&id| {
                self.name(id)
                    .map_or_else(|| format!("#{id}"), str::to_owned)
            })
            .collect()
    }

    /// Formats an id itemset as `{a, b, c}` using names.
    pub fn render(&self, items: &[Item]) -> String {
        format!("{{{}}}", self.decode(items).join(", "))
    }
}

impl<'a> FromIterator<&'a str> for ItemCatalog {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        let mut c = ItemCatalog::new();
        for name in iter {
            c.intern(name);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut c = ItemCatalog::new();
        assert_eq!(c.intern("bread"), 0);
        assert_eq!(c.intern("milk"), 1);
        assert_eq!(c.intern("bread"), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lookup_both_ways() {
        let c: ItemCatalog = ["a", "b"].into_iter().collect();
        assert_eq!(c.id("a"), Some(0));
        assert_eq!(c.id("z"), None);
        assert_eq!(c.name(1), Some("b"));
        assert_eq!(c.name(5), None);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut c = ItemCatalog::new();
        let t = c.encode(&["milk", "eggs", "milk"]);
        assert_eq!(t, vec![0, 1, 0]);
        assert_eq!(c.decode(&[1, 0]), vec!["eggs", "milk"]);
        assert_eq!(c.decode(&[9]), vec!["#9"]);
    }

    #[test]
    fn render_formats_braced() {
        let mut c = ItemCatalog::new();
        c.encode(&["x", "y"]);
        assert_eq!(c.render(&[0, 1]), "{x, y}");
        assert_eq!(c.render(&[]), "{}");
        assert!(!c.is_empty());
    }
}
