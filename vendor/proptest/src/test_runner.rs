//! Test-execution support: configuration, case errors, and the
//! deterministic RNG handed to strategies.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Run configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; 64 keeps the opt-level-1 test
        // profile fast while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A failure with `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }

    /// A rejection with `reason`.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// The RNG strategies draw from. A thin veneer over the vendored
/// [`SmallRng`] so strategy code does not name a concrete engine.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a over `s` — stable across runs and platforms, used to derive
/// per-test seeds from the test path.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf29ce484222325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x100000001b3);
        i += 1;
    }
    hash
}
