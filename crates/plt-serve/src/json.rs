//! Minimal JSON reader/writer for the wire protocol.
//!
//! The service speaks newline-framed JSON (see [`proto`](crate::proto)),
//! and the workspace carries no serde, so this module hand-rolls the
//! subset of JSON the protocol needs: objects, arrays, strings, integers,
//! floats, booleans and null. Object member order is preserved (members
//! are a `Vec` of pairs, looked up linearly — protocol objects have a
//! handful of keys).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers ride as `f64`; supports in this workspace are
    /// transaction counts and stay far below 2^53, where `f64` is exact.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `Json::Str` from anything stringy.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a member of an object; `None` on non-objects too.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Interprets an array of numbers as `u32` items; `None` if any
    /// element is not a non-negative integral number in range.
    pub fn as_items(&self) -> Option<Vec<u32>> {
        let arr = self.as_arr()?;
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            let n = v.as_u64()?;
            if n > u32::MAX as u64 {
                return None;
            }
            out.push(n as u32);
        }
        Some(out)
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Serialises to a compact single-line string (no inner newlines, so a
/// value is always one frame of the line protocol). Use `.to_string()`.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: &'static str,
}

impl JsonError {
    fn at(offset: usize, message: &'static str) -> JsonError {
        JsonError { offset, message }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; conviction of exact rules is +∞, so
        // encode non-finite metrics as null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(JsonError::at(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::at(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not needed by this protocol
                        // (items are integers); map lone surrogates to the
                        // replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar, which may span several bytes.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = Json::obj(vec![
            ("op", Json::str("support")),
            ("items", Json::Arr(vec![1u64.into(), 2u64.into()])),
            ("exact", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let text = v.to_string();
        assert_eq!(
            text,
            r#"{"op":"support","items":[1,2],"exact":true,"note":null}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_render_exactly() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(Json::parse("-2").unwrap().as_f64(), Some(-2.0));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let text = v.to_string();
        assert_eq!(text, r#""a\"b\\c\nd\te\u0001""#);
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::str("A"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{'k':1}").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors_narrow_types() {
        let v = Json::parse(r#"{"k":3,"s":"x","a":[7],"b":false}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_items(), Some(vec![7]));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
