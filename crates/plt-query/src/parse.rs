//! Lexer and recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := shape [tier]
//! shape    := SUPPORT OF itemset
//!           | TOP int [WHERE pred]
//!           | RULES [WHERE pred] [TOP int]
//!           | MINE COND itemset [TOP int]
//! tier     := EXACT | APPROX [WITHIN number]
//! pred     := conj (OR conj)*
//! conj     := factor (AND factor)*
//! factor   := NOT factor | '(' pred ')' | atom
//! atom     := field cmp number
//!           | prefix LIKE pattern
//!           | contains itemset
//! field    := support | size | confidence | lift
//! cmp      := >= | > | <= | < | =
//! itemset  := '{' int (',' int)* '}'
//! pattern  := '{' (int|'*') (',' (int|'*'))* '}'
//! ```
//!
//! Itemset queries (`TOP`, `MINE COND`) accept `support`/`size`/
//! `prefix`/`contains` atoms; rule queries (`RULES`) accept
//! `confidence`/`lift`/`support`. Everything else — including empty
//! `{}` literals, duplicate items, overlong expressions, and predicates
//! nested past [`MAX_PRED_DEPTH`] — is a typed [`PltError::Query`],
//! never a panic.

use plt_core::error::{PltError, Result};
use plt_core::item::Item;

use crate::ast::{CmpOp, Field, Num, PatElem, Pred, Query, QueryKind, Tier};

/// Expressions longer than this are rejected before lexing.
pub const MAX_QUERY_BYTES: usize = 4096;

/// Maximum predicate nesting depth (NOT and parentheses both count).
pub const MAX_PRED_DEPTH: usize = 32;

fn qerr<T>(message: impl Into<String>) -> Result<T> {
    Err(PltError::Query {
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Int(u64),
    Frac(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Star,
    Cmp(CmpOp),
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Word(w) => format!("`{w}`"),
            Tok::Int(n) => format!("`{n}`"),
            Tok::Frac(x) => format!("`{x}`"),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Star => "`*`".into(),
            Tok::Cmp(op) => format!("`{}`", op.as_str()),
        }
    }
}

fn lex(expr: &str) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            b'>' | b'<' | b'=' => {
                let eq = bytes.get(i + 1) == Some(&b'=');
                let op = match (c, eq) {
                    (b'>', true) => CmpOp::Ge,
                    (b'>', false) => CmpOp::Gt,
                    (b'<', true) => CmpOp::Le,
                    (b'<', false) => CmpOp::Lt,
                    _ => CmpOp::Eq,
                };
                // `=` and `==` are the same operator.
                i += if eq { 2 } else { 1 };
                toks.push(Tok::Cmp(op));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_frac = bytes.get(i) == Some(&b'.');
                if is_frac {
                    i += 1;
                    if !bytes.get(i).is_some_and(|b| b.is_ascii_digit()) {
                        return qerr(format!(
                            "number `{}.` needs digits after the decimal point",
                            &expr[start..i - 1]
                        ));
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &expr[start..i];
                    match text.parse::<f64>() {
                        Ok(x) if x.is_finite() => toks.push(Tok::Frac(x)),
                        _ => return qerr(format!("number `{text}` is out of range")),
                    }
                } else {
                    let text = &expr[start..i];
                    match text.parse::<u64>() {
                        Ok(n) => toks.push(Tok::Int(n)),
                        Err(_) => return qerr(format!("number `{text}` is out of range")),
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok::Word(expr[start..i].to_ascii_lowercase()));
            }
            other => {
                return qerr(format!(
                    "unexpected character `{}` at byte {i}",
                    (other as char).escape_default()
                ))
            }
        }
    }
    Ok(toks)
}

/// Which atom vocabulary a predicate may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PredContext {
    /// `TOP` / `MINE COND`: support, size, prefix LIKE, contains.
    Itemsets,
    /// `RULES`: confidence, lift, support.
    Rules,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consumes the next token if it is the given keyword.
    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Word(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str, context: &str) -> Result<()> {
        match self.next() {
            Some(Tok::Word(w)) if w == word => Ok(()),
            Some(t) => qerr(format!(
                "expected `{}` {context}, found {}",
                word.to_uppercase(),
                t.describe()
            )),
            None => qerr(format!(
                "expected `{}` {context}, found end of query",
                word.to_uppercase()
            )),
        }
    }

    fn expect_int(&mut self, context: &str) -> Result<u64> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(n),
            Some(t) => qerr(format!(
                "{context} must be an integer, found {}",
                t.describe()
            )),
            None => qerr(format!("{context} must be an integer, found end of query")),
        }
    }

    /// `'{' int (',' int)* '}'` — non-empty, duplicate-free.
    fn itemset(&mut self, context: &str) -> Result<Vec<Item>> {
        match self.next() {
            Some(Tok::LBrace) => {}
            Some(t) => {
                return qerr(format!(
                    "{context} needs an itemset, found {}",
                    t.describe()
                ))
            }
            None => return qerr(format!("{context} needs an itemset, found end of query")),
        }
        if matches!(self.peek(), Some(Tok::RBrace)) {
            return qerr(format!("{context} itemset must not be empty"));
        }
        let mut items: Vec<Item> = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Int(n)) => {
                    let item = u32::try_from(n).map_err(|_| PltError::Query {
                        message: format!("item {n} is out of the u32 item range"),
                    })?;
                    if items.contains(&item) {
                        return qerr(format!("duplicate item {item} in {context} itemset"));
                    }
                    items.push(item);
                }
                Some(t) => {
                    return qerr(format!(
                        "{context} itemset expects item ids, found {}",
                        t.describe()
                    ))
                }
                None => return qerr(format!("{context} itemset is not closed")),
            }
            match self.next() {
                Some(Tok::Comma) => {}
                Some(Tok::RBrace) => return Ok(items),
                Some(t) => {
                    return qerr(format!(
                        "{context} itemset expects `,` or `}}`, found {}",
                        t.describe()
                    ))
                }
                None => return qerr(format!("{context} itemset is not closed")),
            }
        }
    }

    /// `'{' (int|'*') (',' (int|'*'))* '}'` — non-empty.
    fn pattern(&mut self) -> Result<Vec<PatElem>> {
        match self.next() {
            Some(Tok::LBrace) => {}
            Some(t) => return qerr(format!("LIKE needs a pattern, found {}", t.describe())),
            None => return qerr("LIKE needs a pattern, found end of query"),
        }
        if matches!(self.peek(), Some(Tok::RBrace)) {
            return qerr("LIKE {} matches nothing: patterns must name at least one element");
        }
        let mut pattern = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Int(n)) => {
                    let item = u32::try_from(n).map_err(|_| PltError::Query {
                        message: format!("item {n} is out of the u32 item range"),
                    })?;
                    pattern.push(PatElem::Item(item));
                }
                Some(Tok::Star) => pattern.push(PatElem::Any),
                Some(t) => {
                    return qerr(format!(
                        "pattern expects item ids or `*`, found {}",
                        t.describe()
                    ))
                }
                None => return qerr("pattern is not closed"),
            }
            match self.next() {
                Some(Tok::Comma) => {}
                Some(Tok::RBrace) => return Ok(pattern),
                Some(t) => {
                    return qerr(format!(
                        "pattern expects `,` or `}}`, found {}",
                        t.describe()
                    ))
                }
                None => return qerr("pattern is not closed"),
            }
        }
    }

    fn number(&mut self, field: Field) -> Result<Num> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(Num::Abs(n)),
            Some(Tok::Frac(x)) => {
                if field == Field::Size {
                    qerr("size takes an integer, not a fraction")
                } else {
                    Ok(Num::Frac(x))
                }
            }
            Some(t) => qerr(format!(
                "{} comparison needs a number, found {}",
                field.as_str(),
                t.describe()
            )),
            None => qerr(format!(
                "{} comparison needs a number, found end of query",
                field.as_str()
            )),
        }
    }

    fn pred(&mut self, ctx: PredContext, depth: usize) -> Result<Pred> {
        let mut left = self.conj(ctx, depth)?;
        while self.eat_word("or") {
            let right = self.conj(ctx, depth)?;
            left = Pred::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conj(&mut self, ctx: PredContext, depth: usize) -> Result<Pred> {
        let mut left = self.factor(ctx, depth)?;
        while self.eat_word("and") {
            let right = self.factor(ctx, depth)?;
            left = Pred::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self, ctx: PredContext, depth: usize) -> Result<Pred> {
        if depth >= MAX_PRED_DEPTH {
            return qerr(format!(
                "predicate nesting exceeds the maximum depth of {MAX_PRED_DEPTH}"
            ));
        }
        if self.eat_word("not") {
            return Ok(Pred::Not(Box::new(self.factor(ctx, depth + 1)?)));
        }
        if matches!(self.peek(), Some(Tok::LParen)) {
            self.pos += 1;
            let inner = self.pred(ctx, depth + 1)?;
            match self.next() {
                Some(Tok::RParen) => return Ok(inner),
                Some(t) => return qerr(format!("expected `)`, found {}", t.describe())),
                None => return qerr("expected `)`, found end of query"),
            }
        }
        self.atom(ctx)
    }

    fn atom(&mut self, ctx: PredContext) -> Result<Pred> {
        let word = match self.next() {
            Some(Tok::Word(w)) => w,
            Some(t) => {
                return qerr(format!(
                    "expected a predicate (field comparison, `prefix LIKE`, or \
                     `contains`), found {}",
                    t.describe()
                ))
            }
            None => return qerr("expected a predicate, found end of query"),
        };
        match (word.as_str(), ctx) {
            ("prefix", PredContext::Itemsets) => {
                self.expect_word("like", "after `prefix`")?;
                Ok(Pred::PrefixLike(self.pattern()?))
            }
            ("contains", PredContext::Itemsets) => Ok(Pred::Contains(self.itemset("contains")?)),
            ("prefix" | "contains", PredContext::Rules) => qerr(format!(
                "`{word}` filters itemsets; RULES predicates use \
                 confidence/lift/support"
            )),
            (name, _) => {
                let field = match (name, ctx) {
                    ("support", _) => Field::Support,
                    ("size", PredContext::Itemsets) => Field::Size,
                    ("confidence", PredContext::Rules) => Field::Confidence,
                    ("lift", PredContext::Rules) => Field::Lift,
                    ("size", PredContext::Rules) => {
                        return qerr(
                            "`size` filters itemsets; RULES predicates use \
                             confidence/lift/support",
                        )
                    }
                    ("confidence" | "lift", PredContext::Itemsets) => {
                        return qerr(format!(
                            "`{name}` is a rule field; itemset predicates use \
                             support/size/prefix/contains"
                        ))
                    }
                    _ => return qerr(format!("unknown predicate field `{name}`")),
                };
                let op = match self.next() {
                    Some(Tok::Cmp(op)) => op,
                    Some(t) => {
                        return qerr(format!(
                            "`{name}` needs a comparison operator, found {}",
                            t.describe()
                        ))
                    }
                    None => {
                        return qerr(format!(
                            "`{name}` needs a comparison operator, found end of query"
                        ))
                    }
                };
                let value = self.number(field)?;
                Ok(Pred::Cmp { field, op, value })
            }
        }
    }

    /// Optional `WHERE pred`.
    fn filter(&mut self, ctx: PredContext) -> Result<Option<Pred>> {
        if self.eat_word("where") {
            Ok(Some(self.pred(ctx, 0)?))
        } else {
            Ok(None)
        }
    }

    /// Optional `TOP k`, with `k = 0` rejected (it asks for nothing).
    fn top_clause(&mut self) -> Result<Option<usize>> {
        if self.eat_word("top") {
            let k = self.expect_int("TOP count")?;
            if k == 0 {
                return qerr("TOP 0 asks for nothing");
            }
            Ok(Some(k as usize))
        } else {
            Ok(None)
        }
    }

    /// Optional trailing tier modifier: `APPROX [WITHIN number]`, or the
    /// explicit default `EXACT` (accepted, folds into the default so the
    /// two spellings share a normal form).
    fn tier(&mut self) -> Result<Tier> {
        if self.eat_word("exact") {
            return Ok(Tier::Exact);
        }
        if !self.eat_word("approx") {
            return Ok(Tier::Exact);
        }
        if !self.eat_word("within") {
            return Ok(Tier::Approx { eps: None });
        }
        let eps = match self.next() {
            Some(Tok::Frac(x)) => x,
            Some(Tok::Int(n)) => n as f64,
            Some(t) => {
                return qerr(format!(
                    "WITHIN needs an error bound, found {}",
                    t.describe()
                ))
            }
            None => return qerr("WITHIN needs an error bound, found end of query"),
        };
        if !(eps > 0.0 && eps <= 1.0) {
            return qerr(format!(
                "APPROX WITHIN bound must be in (0, 1], found {eps}"
            ));
        }
        Ok(Tier::Approx { eps: Some(eps) })
    }

    fn query(&mut self) -> Result<Query> {
        let head = match self.next() {
            Some(Tok::Word(w)) => w,
            Some(t) => {
                return qerr(format!(
                    "query must start with SUPPORT, TOP, RULES, or MINE; found {}",
                    t.describe()
                ))
            }
            None => return qerr("empty query"),
        };
        let kind = match head.as_str() {
            "support" => {
                self.expect_word("of", "after `SUPPORT`")?;
                QueryKind::Support {
                    items: self.itemset("SUPPORT OF")?,
                }
            }
            "top" => {
                let k = self.expect_int("TOP count")?;
                if k == 0 {
                    return qerr("TOP 0 asks for nothing");
                }
                QueryKind::Top {
                    k: k as usize,
                    filter: self.filter(PredContext::Itemsets)?,
                }
            }
            "rules" => QueryKind::Rules {
                filter: self.filter(PredContext::Rules)?,
                k: self.top_clause()?,
            },
            "mine" => {
                self.expect_word("cond", "after `MINE`")?;
                QueryKind::MineCond {
                    cond: self.itemset("MINE COND")?,
                    k: self.top_clause()?,
                }
            }
            other => {
                return qerr(format!(
                    "query must start with SUPPORT, TOP, RULES, or MINE; found `{other}`"
                ))
            }
        };
        let tier = self.tier()?;
        match self.peek() {
            None => Ok(Query { kind, tier }),
            Some(t) => qerr(format!("trailing {} after the query", t.describe())),
        }
    }
}

/// Parses one query expression. Errors are always typed
/// [`PltError::Query`] values with a human-readable message.
pub fn parse(expr: &str) -> Result<Query> {
    if expr.len() > MAX_QUERY_BYTES {
        return qerr(format!(
            "query is {} bytes; the maximum is {MAX_QUERY_BYTES}",
            expr.len()
        ));
    }
    let toks = lex(expr)?;
    Parser { toks, pos: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Field, Num, PatElem, Pred, Query, QueryKind, Tier};
    use proptest::prelude::*;

    fn p(expr: &str) -> Query {
        parse(expr).unwrap_or_else(|e| panic!("parse({expr:?}): {e}"))
    }

    fn perr(expr: &str) -> String {
        match parse(expr) {
            Err(PltError::Query { message }) => message,
            Ok(q) => panic!("parse({expr:?}) unexpectedly succeeded: {q:?}"),
            Err(other) => panic!("parse({expr:?}) returned a non-Query error: {other:?}"),
        }
    }

    #[test]
    fn grammar_examples_parse() {
        assert_eq!(
            p("SUPPORT OF {1,2}"),
            Query::exact(QueryKind::Support { items: vec![1, 2] })
        );
        assert_eq!(
            p("TOP 20 WHERE support >= 0.01 AND prefix LIKE {3,*}"),
            Query::exact(QueryKind::Top {
                k: 20,
                filter: Some(Pred::And(
                    Box::new(Pred::Cmp {
                        field: Field::Support,
                        op: CmpOp::Ge,
                        value: Num::Frac(0.01),
                    }),
                    Box::new(Pred::PrefixLike(vec![PatElem::Item(3), PatElem::Any])),
                )),
            })
        );
        assert_eq!(
            p("RULES WHERE confidence >= 0.8 AND lift > 1.2"),
            Query::exact(QueryKind::Rules {
                filter: Some(Pred::And(
                    Box::new(Pred::Cmp {
                        field: Field::Confidence,
                        op: CmpOp::Ge,
                        value: Num::Frac(0.8),
                    }),
                    Box::new(Pred::Cmp {
                        field: Field::Lift,
                        op: CmpOp::Gt,
                        value: Num::Frac(1.2),
                    }),
                )),
                k: None,
            })
        );
        assert_eq!(
            p("MINE COND {1} TOP 10"),
            Query::exact(QueryKind::MineCond {
                cond: vec![1],
                k: Some(10),
            })
        );
    }

    #[test]
    fn tier_modifiers_parse() {
        let kind = QueryKind::Support { items: vec![1, 2] };
        assert_eq!(
            p("SUPPORT OF {1,2} APPROX"),
            Query::approx(kind.clone(), None)
        );
        assert_eq!(
            p("SUPPORT OF {1,2} approx within 0.05"),
            Query::approx(kind.clone(), Some(0.05))
        );
        // An integer bound lexes as Int and is accepted as a fraction.
        assert_eq!(
            p("SUPPORT OF {1,2} APPROX WITHIN 1"),
            Query::approx(kind.clone(), Some(1.0))
        );
        // Explicit EXACT folds into the default: same AST, same cache key.
        assert_eq!(p("SUPPORT OF {1,2} EXACT"), Query::exact(kind));
        assert_eq!(
            p("SUPPORT OF {1,2} EXACT").cache_key(),
            p("support of {2,1}").cache_key()
        );
        // Every shape takes the modifier.
        assert!(p("TOP 5 WHERE support >= 2 APPROX").tier.is_approx());
        assert!(p("RULES TOP 3 APPROX").tier.is_approx());
        assert!(p("MINE COND {1} APPROX WITHIN 0.1").tier.is_approx());
    }

    #[test]
    fn keywords_are_case_insensitive_and_whitespace_is_free() {
        assert_eq!(p("support of {1}"), p("SUPPORT   OF\t{ 1 }"));
        assert_eq!(p("top 5 where size >= 2"), p("TOP 5 WHERE SIZE >= 2"));
        assert_eq!(p("rules where lift = 1.0"), p("RULES WHERE LIFT == 1.0"));
    }

    #[test]
    fn precedence_is_not_over_and_over_or() {
        let q = p("TOP 5 WHERE NOT size > 3 AND support >= 2 OR contains {1}");
        let QueryKind::Top {
            filter: Some(Pred::Or(left, _)),
            ..
        } = q.kind
        else {
            panic!("OR is the top operator");
        };
        assert!(matches!(*left, Pred::And(..)));
    }

    /// The adversarial table from the issue: each malformed input maps
    /// to a typed error whose message names the problem.
    #[test]
    fn adversarial_inputs_yield_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "empty query"),
            ("SUPPORT OF {}", "must not be empty"),
            ("MINE COND {} TOP 5", "must not be empty"),
            ("TOP 5 WHERE contains {}", "must not be empty"),
            ("TOP 5 WHERE prefix LIKE {}", "matches nothing"),
            ("SUPPORT OF {1,1}", "duplicate item 1"),
            ("SUPPORT OF {1,2", "not closed"),
            ("TOP 0", "asks for nothing"),
            ("RULES TOP 0", "asks for nothing"),
            ("TOP 5 WHERE confidence >= 0.5", "rule field"),
            ("RULES WHERE size >= 2", "filters itemsets"),
            ("RULES WHERE prefix LIKE {1}", "filters itemsets"),
            ("TOP 5 WHERE size >= 0.5", "integer, not a fraction"),
            ("TOP 5 WHERE frequency > 1", "unknown predicate field"),
            ("SUPPORT OF {99999999999}", "out of the u32 item range"),
            ("TOP 5 WHERE support >= ", "needs a number"),
            ("TOP 5 WHERE support 2", "comparison operator"),
            ("EXPLAIN TOP 5", "must start with"),
            ("TOP 5 WHERE (support >= 2", "expected `)`"),
            ("SUPPORT OF {1} garbage", "trailing"),
            (
                "TOP 5 WHERE support >= 1.",
                "digits after the decimal point",
            ),
            ("SUPPORT OF {1} ; DROP", "unexpected character"),
            ("SUPPORT OF {1} APPROX WITHIN", "needs an error bound"),
            ("SUPPORT OF {1} APPROX WITHIN 0", "must be in (0, 1]"),
            ("SUPPORT OF {1} APPROX WITHIN 1.5", "must be in (0, 1]"),
            ("SUPPORT OF {1} EXACT APPROX", "trailing"),
            ("TOP 5 APPROX APPROX", "trailing"),
        ];
        for (expr, needle) in cases {
            let msg = perr(expr);
            assert!(
                msg.contains(needle),
                "parse({expr:?}) error {msg:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn overlong_queries_are_rejected_before_lexing() {
        let long = format!("SUPPORT OF {{1{}}}", ",2".repeat(MAX_QUERY_BYTES));
        let msg = perr(&long);
        assert!(msg.contains("maximum"), "{msg}");
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let depth = MAX_PRED_DEPTH + 4;
        let expr = format!(
            "TOP 5 WHERE {}support >= 2{}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        assert!(perr(&expr).contains("nesting"));
        let nots = format!("TOP 5 WHERE {} support >= 2", "NOT ".repeat(depth));
        assert!(perr(&nots).contains("nesting"));
        // One level under the cap still parses.
        let ok = format!(
            "TOP 5 WHERE {}support >= 2{}",
            "(".repeat(MAX_PRED_DEPTH - 1),
            ")".repeat(MAX_PRED_DEPTH - 1)
        );
        assert!(parse(&ok).is_ok());
    }

    /// Deterministic AST builder driven by a byte script: turns proptest
    /// primitives into structurally diverse queries (the vendored
    /// proptest shim has no recursive strategies).
    fn build_pred(script: &[u8], depth: usize, rules: bool, i: &mut usize) -> Pred {
        let b = script.get(*i).copied().unwrap_or(0);
        *i += 1;
        let atom = |b: u8| -> Pred {
            let fields: &[Field] = if rules {
                &[Field::Support, Field::Confidence, Field::Lift]
            } else {
                &[Field::Support, Field::Size]
            };
            let field = fields[(b / 16) as usize % fields.len()];
            let ops = [CmpOp::Ge, CmpOp::Gt, CmpOp::Le, CmpOp::Lt, CmpOp::Eq];
            let op = ops[(b / 4) as usize % ops.len()];
            let value = if field == Field::Size {
                Num::Abs((b % 7) as u64)
            } else {
                match b % 3 {
                    0 => Num::Abs((b % 11) as u64),
                    1 => Num::Frac((b % 13) as f64 / 8.0),
                    _ => Num::Frac((b % 9) as f64),
                }
            };
            Pred::Cmp { field, op, value }
        };
        if depth >= 6 {
            return atom(b);
        }
        match b % 8 {
            0 => Pred::And(
                Box::new(build_pred(script, depth + 1, rules, i)),
                Box::new(build_pred(script, depth + 1, rules, i)),
            ),
            1 => Pred::Or(
                Box::new(build_pred(script, depth + 1, rules, i)),
                Box::new(build_pred(script, depth + 1, rules, i)),
            ),
            2 => Pred::Not(Box::new(build_pred(script, depth + 1, rules, i))),
            3 if !rules => {
                let n = (b / 8) % 3 + 1;
                Pred::PrefixLike(
                    (0..n)
                        .map(|j| {
                            if (b >> j) & 1 == 1 {
                                PatElem::Any
                            } else {
                                PatElem::Item((j as u32) + (b as u32 % 5))
                            }
                        })
                        .collect(),
                )
            }
            4 if !rules => {
                let n = (b / 8) % 3 + 1;
                Pred::Contains((0..n).map(|j| j as u32 * 3 + (b as u32 % 7)).collect())
            }
            _ => atom(b),
        }
    }

    fn build_query(script: &[u8]) -> Query {
        let head = script.first().copied().unwrap_or(0);
        let mut i = 1;
        let items: Vec<u32> = {
            let n = (head / 4) % 4 + 1;
            (0..n).map(|j| j as u32 * 2 + (head as u32 % 3)).collect()
        };
        let k = (head % 9) as usize + 1;
        let kind = match head % 4 {
            0 => QueryKind::Support { items },
            1 => QueryKind::Top {
                k,
                filter: if head & 16 != 0 {
                    Some(build_pred(script, 0, false, &mut i))
                } else {
                    None
                },
            },
            2 => QueryKind::Rules {
                filter: if head & 16 != 0 {
                    Some(build_pred(script, 0, true, &mut i))
                } else {
                    None
                },
                k: if head & 32 != 0 { Some(k) } else { None },
            },
            _ => QueryKind::MineCond {
                cond: items,
                k: if head & 32 != 0 { Some(k) } else { None },
            },
        };
        // The tier comes from the byte after the predicate script so it
        // varies independently of the shape.
        let t = script.get(i).copied().unwrap_or(0);
        let tier = match t % 4 {
            0 | 1 => Tier::Exact,
            2 => Tier::Approx { eps: None },
            _ => Tier::Approx {
                eps: Some(((t / 4) % 20 + 1) as f64 / 20.0),
            },
        };
        Query { kind, tier }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// `parse(print(ast)) == ast` for structurally diverse ASTs:
        /// the printer and parser are exact inverses.
        #[test]
        fn prop_print_parse_roundtrip(
            script in proptest::collection::vec(0u8..255, 1..40),
        ) {
            let ast = build_query(&script);
            let printed = ast.to_string();
            let reparsed = parse(&printed);
            prop_assert_eq!(
                reparsed.as_ref().ok(),
                Some(&ast),
                "roundtrip of {}: {:?}",
                printed,
                reparsed
            );
            // Normalization is idempotent and preserved by the roundtrip.
            let norm = ast.clone().normalize();
            prop_assert_eq!(norm.clone().normalize(), norm.clone());
            prop_assert_eq!(parse(&norm.to_string()).unwrap(), norm);
        }

        /// No input — printable garbage included — panics the parser;
        /// failures are always typed `PltError::Query`.
        #[test]
        fn prop_parser_never_panics(
            bytes in proptest::collection::vec(32u8..127, 0..120),
        ) {
            let expr: String = bytes.into_iter().map(|b| b as char).collect();
            match parse(&expr) {
                Ok(_) => {}
                Err(PltError::Query { message }) => {
                    prop_assert!(!message.is_empty());
                }
                Err(other) => prop_assert!(false, "non-Query error: {:?}", other),
            }
        }
    }
}
