//! Per-item projections of a PLT — the parallel work units.
//!
//! The sequential conditional miner (Algorithm 3) peels items off one at a
//! time, folding prefixes back as it goes; that fold creates a sequential
//! dependency between items. For parallel mining we instead compute every
//! item's conditional database directly from the *original* PLT in one
//! pass: vector `V` with ranks `r_1 < … < r_k` contributes its prefix
//! before `r_i` to item `r_i`'s database, for every `i`. The two
//! formulations count identically (each transaction containing item `j`
//! contributes its sub-`j` prefix exactly once either way), but the direct
//! one makes the per-item units independent.
//!
//! Conditional databases are stored **flat**: one contiguous position
//! buffer per item plus `(offset, len, freq)` windows, the same layout the
//! arena engine consumes — so the per-worker miners are fed straight from
//! these slices without materialising a single `PositionVector`.

use plt_core::item::{Rank, Support};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;

/// One item's projection: support plus its conditional database in flat
/// storage.
#[derive(Debug, Clone, Default)]
struct Slot {
    support: Support,
    /// Contiguous position storage for every prefix in this database.
    positions: Vec<Rank>,
    /// `(offset, len, freq)` windows into `positions`.
    entries: Vec<(u32, u32, Support)>,
}

/// A borrowed view of one item's conditional database.
#[derive(Debug, Clone, Copy)]
pub struct CondView<'a> {
    positions: &'a [Rank],
    entries: &'a [(u32, u32, Support)],
}

impl<'a> CondView<'a> {
    /// Number of (unmerged) prefix entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the item has no conditional database.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(positions, frequency)` windows — the exact shape
    /// [`plt_core::ArenaPool::mine_conditional`] consumes.
    pub fn iter(&self) -> impl Iterator<Item = (&'a [Rank], Support)> + Clone + '_ {
        let positions = self.positions;
        self.entries
            .iter()
            .map(move |&(off, len, freq)| (&positions[off as usize..(off + len) as usize], freq))
    }

    /// Materialises the database as owned vectors — the legacy shape the
    /// map engine consumes; also handy in tests.
    pub fn to_vectors(&self) -> Vec<(PositionVector, Support)> {
        self.iter()
            .map(|(p, f)| {
                (
                    PositionVector::from_positions(p.to_vec()).expect("stored positions are valid"),
                    f,
                )
            })
            .collect()
    }
}

/// All per-item projections of a PLT.
#[derive(Debug, Clone)]
pub struct Projections {
    /// Indexed by `rank − 1`. Duplicate prefixes are left unmerged — the
    /// conditional construction merges them.
    by_rank: Vec<Slot>,
}

impl Projections {
    /// Number of ranked items covered.
    pub fn len(&self) -> usize {
        self.by_rank.len()
    }

    /// True when the PLT had no ranked items.
    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    /// Support of the item holding `rank`, as observed in the vectors.
    pub fn support(&self, rank: Rank) -> Support {
        self.by_rank[(rank - 1) as usize].support
    }

    /// Conditional database of the item holding `rank`, as a flat view.
    pub fn conditional(&self, rank: Rank) -> CondView<'_> {
        let slot = &self.by_rank[(rank - 1) as usize];
        CondView {
            positions: &slot.positions,
            entries: &slot.entries,
        }
    }
}

/// Builds every item's projection in a single pass over the PLT. Prefixes
/// are written directly into per-item flat buffers (positions are shared
/// deltas, so the prefix before rank `r_i` is just the first `i` positions
/// of the vector — a plain slice copy).
pub fn project_all(plt: &Plt) -> Projections {
    let n = plt.ranking().len();
    let mut by_rank: Vec<Slot> = vec![Slot::default(); n];
    for (v, e) in plt.iter() {
        let positions = v.positions();
        let mut acc = 0;
        for (i, &p) in positions.iter().enumerate() {
            acc += p; // rank of the i-th item (Lemma 4.1.1)
            let slot = &mut by_rank[(acc - 1) as usize];
            slot.support += e.freq;
            if i > 0 {
                let offset = slot.positions.len() as u32;
                slot.positions.extend_from_slice(&positions[..i]);
                slot.entries.push((offset, i as u32, e.freq));
            }
        }
    }
    Projections { by_rank }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::item::Item;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    fn pv(p: &[Rank]) -> PositionVector {
        PositionVector::from_positions(p.to_vec()).unwrap()
    }

    #[test]
    fn supports_match_item_scan() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        assert_eq!(proj.len(), 4);
        assert_eq!(proj.support(1), 4); // A
        assert_eq!(proj.support(2), 5); // B
        assert_eq!(proj.support(3), 5); // C
        assert_eq!(proj.support(4), 4); // D
    }

    #[test]
    fn conditional_of_top_rank_matches_figure5() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        let mut cd: Vec<(PositionVector, Support)> = proj.conditional(4).to_vectors();
        cd.sort();
        assert_eq!(
            cd,
            vec![
                (pv(&[1, 1]), 1),
                (pv(&[1, 1, 1]), 1),
                (pv(&[2, 1]), 1),
                (pv(&[3]), 1),
            ]
        );
    }

    #[test]
    fn flat_view_iterates_position_windows() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        let view = proj.conditional(4);
        assert_eq!(view.len(), 4);
        let mut windows: Vec<(Vec<Rank>, Support)> =
            view.iter().map(|(p, f)| (p.to_vec(), f)).collect();
        windows.sort();
        assert_eq!(
            windows,
            vec![
                (vec![1, 1], 1),
                (vec![1, 1, 1], 1),
                (vec![2, 1], 1),
                (vec![3], 1),
            ]
        );
    }

    #[test]
    fn conditional_of_lowest_rank_is_empty() {
        // Rank 1 is the smallest item; nothing precedes it.
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        assert!(proj.conditional(1).is_empty());
    }

    #[test]
    fn intermediate_rank_projects_prefixes_only() {
        // Item C (rank 3): contained in ABC×2, ABCD, BCD, CD. Prefixes:
        // AB×3 (from ABC×2 + ABCD), B×1 (BCD), none for CD (C is first).
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let proj = project_all(&plt);
        let mut total: Support = 0;
        for (v, f) in proj.conditional(3).to_vectors() {
            assert!(v.sum() < 3);
            total += f;
        }
        // 4 prefix-contributing occurrences (ABC×2, ABCD, BCD).
        assert_eq!(total, 4);
    }

    #[test]
    fn empty_plt_projects_nothing() {
        let db: Vec<Vec<Item>> = vec![];
        let plt = construct(&db, 1, ConstructOptions::conditional()).unwrap();
        assert!(project_all(&plt).is_empty());
    }
}
