//! X6 — compression/decompression throughput and indexed conditional
//! extraction (the size comparison itself is in `experiments --exp x6`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_compress::CompressedPlt;
use plt_core::construct::{construct, ConstructOptions};

fn bench(c: &mut Criterion) {
    let workloads = [
        ("sparse", datasets::sparse(2_000), 20u64),
        ("dense", datasets::dense(1_000, 16), 300u64),
    ];
    for (name, db, min_sup) in &workloads {
        let plt = construct(db, *min_sup, ConstructOptions::conditional()).unwrap();
        let compressed = CompressedPlt::from_plt(&plt);
        let top_rank = plt.ranking().len() as u32;

        let mut group = c.benchmark_group(format!("x6/{name}"));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("compress"), &plt, |b, plt| {
            b.iter(|| CompressedPlt::from_plt(plt))
        });
        group.bench_with_input(
            BenchmarkId::from_parameter("decompress"),
            &compressed,
            |b, compressed| b.iter(|| compressed.to_plt()),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter("indexed-conditional"),
            &compressed,
            |b, compressed| b.iter(|| compressed.vectors_with_sum(top_rank)),
        );
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
