//! X7 — subset checking: PLT position-vector probes (Lemma 4.1.3) vs a
//! plain itemset hash set, on an Apriori-style prune workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_baselines::FpGrowthMiner;
use plt_bench::datasets;
use plt_core::miner::Miner;
use plt_core::posvec::PositionVector;
use plt_core::ranking::{ItemRanking, RankPolicy};
use plt_core::subset::{NaiveChecker, SubsetChecker};

fn bench(c: &mut Criterion) {
    let n = 2_000usize;
    let db = datasets::baskets(n);
    let min_sup = ((0.02 * n as f64).ceil() as u64).max(1);
    let result = FpGrowthMiner.mine(&db, min_sup);
    let ranking = ItemRanking::scan(&db, min_sup, RankPolicy::Lexicographic);

    // Candidate workload: every frequent itemset extended by every
    // frequent item.
    let singletons: Vec<u32> = result.of_size(1).map(|(s, _)| s.items()[0]).collect();
    let mut candidates: Vec<Vec<u32>> = Vec::new();
    for (itemset, _) in result.iter() {
        for &x in &singletons {
            if !itemset.contains(x) {
                let mut c = itemset.items().to_vec();
                c.push(x);
                c.sort_unstable();
                candidates.push(c);
            }
        }
    }
    candidates.sort();
    candidates.dedup();
    let vectors: Vec<PositionVector> = candidates
        .iter()
        .map(|c| {
            let ranks: Vec<u32> = c.iter().map(|&i| ranking.rank(i).unwrap()).collect();
            PositionVector::from_ranks(&ranks).unwrap()
        })
        .collect();

    let naive = NaiveChecker::from_result(&result);
    let plt = SubsetChecker::from_result(&result, &ranking);

    let mut group = c.benchmark_group("x7/prune");
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::from_parameter("naive-hash-set"),
        &candidates,
        |b, cands| {
            b.iter(|| {
                cands
                    .iter()
                    .filter(|c| naive.all_level_down_subsets_present(c))
                    .count()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("plt-vectors"),
        &vectors,
        |b, vecs| {
            b.iter(|| {
                vecs.iter()
                    .filter(|v| plt.all_level_down_subsets_present(v))
                    .count()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
