//! Incremental-mining differential tests: after ANY sequence of deltas —
//! adds, removes, vocabulary drift, capacity evictions — the sharded
//! pipeline's merged result must equal a full re-mine of the surviving
//! window at the same minimum support. The proptest mirrors the
//! pipeline's window semantics in a plain model (removes first, matched
//! by normalized equality against the oldest occurrence; per-add
//! front-eviction at capacity) so the reference database is always known
//! exactly.

use std::collections::BTreeSet;

use plt::core::miner::Miner;
use plt::shard::{Delta, MinerBuilder, ShardConfig, ShardedPipeline};
use plt::ConditionalMiner;
use proptest::prelude::*;

mod common;
use common::{diff_support_maps, support_map};

fn normalize(t: &[u32]) -> Vec<u32> {
    let mut t = t.to_vec();
    t.sort_unstable();
    t.dedup();
    t
}

/// Asserts the pipeline's merged result equals a from-scratch mine of
/// `window`; `Err` carries a replayable diff.
fn matches_full_mine(
    pipeline: &ShardedPipeline,
    window: &[Vec<u32>],
    min_support: u64,
    label: &str,
) -> Result<(), String> {
    let reference = support_map(&ConditionalMiner::default().mine(window, min_support));
    let got = support_map(pipeline.result());
    if let Some(diff) = diff_support_maps(&reference, &got) {
        return Err(format!(
            "{label}: incremental diverged from full re-mine at min_support \
             {min_support} on window ({} rows):\n{window:?}\ndiff (reference = full):\n{diff}",
            window.len(),
        ));
    }
    Ok(())
}

#[test]
fn interleaved_adds_and_removes_match_full_remine() {
    let base = vec![
        vec![1, 2, 3],
        vec![1, 2, 4],
        vec![2, 3, 4],
        vec![1, 3],
        vec![1, 2, 3, 4],
    ];
    let config = ShardConfig {
        shard_count: 4,
        min_support: 2,
        ..ShardConfig::default()
    };
    let mut pipeline = ShardedPipeline::new(&base, config).unwrap();
    let mut window = base.clone();

    // Add two, remove one, add one more — checking after every step.
    let steps: Vec<Delta> = vec![
        Delta::add(vec![vec![1, 2], vec![3, 4]]),
        Delta {
            adds: Vec::new(),
            removes: vec![vec![1, 2, 4]],
        },
        Delta::add(vec![vec![1, 2, 3]]),
    ];
    for (i, delta) in steps.into_iter().enumerate() {
        for r in &delta.removes {
            let t = normalize(r);
            let pos = window.iter().position(|w| normalize(w) == t).unwrap();
            window.remove(pos);
        }
        window.extend(delta.adds.iter().cloned());
        pipeline.apply(delta).unwrap();
        matches_full_mine(&pipeline, &window, 2, &format!("step {i}")).unwrap();
    }
}

#[test]
fn drift_inducing_delta_matches_full_remine() {
    // Items 90..94 are absent from the base; the delta pushes them over
    // the threshold, forcing a full re-rank — the answer must still match.
    let base = vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![1, 2, 3]];
    let config = ShardConfig {
        shard_count: 4,
        min_support: 2,
        ..ShardConfig::default()
    };
    let mut pipeline = ShardedPipeline::new(&base, config).unwrap();
    let delta = vec![vec![90, 91], vec![90, 91, 92], vec![91, 92]];
    let report = pipeline.apply(Delta::add(delta.clone())).unwrap();
    assert!(report.reranked, "new frequent items must force a re-rank");
    let mut window = base;
    window.extend(delta);
    matches_full_mine(&pipeline, &window, 2, "drift").unwrap();
}

#[test]
fn builder_pipeline_matches_direct_construction() {
    let base = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![1, 2, 3]];
    let via_builder = MinerBuilder::new()
        .min_support(2)
        .shard_count(4)
        .build_pipeline(&base, None)
        .unwrap();
    let config = ShardConfig {
        shard_count: 4,
        min_support: 2,
        ..ShardConfig::default()
    };
    let direct = ShardedPipeline::new(&base, config).unwrap();
    assert_eq!(
        support_map(via_builder.result()),
        support_map(direct.result())
    );
}

/// Mirrors one delta through the model window with the pipeline's exact
/// semantics: removes first (oldest normalized match), then adds with
/// per-transaction front-eviction at capacity.
fn model_apply(window: &mut Vec<Vec<u32>>, delta: &Delta, capacity: Option<usize>) {
    for r in &delta.removes {
        let t = normalize(r);
        if let Some(pos) = window.iter().position(|w| *w == t) {
            window.remove(pos);
        }
    }
    for a in &delta.adds {
        match capacity {
            Some(0) => continue,
            Some(cap) if window.len() >= cap => {
                window.remove(0);
            }
            _ => {}
        }
        window.push(normalize(a));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary delta sequences — skewed adds, removes of both present
    /// and novel-vocabulary rows, with and without a capacity bound —
    /// always leave the pipeline equal to a full re-mine of the window.
    #[test]
    fn prop_any_delta_sequence_matches_full_remine(
        base in proptest::collection::vec(
            proptest::collection::btree_set(0u32..40, 1..6),
            3..10,
        ),
        deltas in proptest::collection::vec(
            (
                proptest::collection::vec(
                    proptest::collection::btree_set(0u32..60, 1..5),
                    0..4,
                ),
                proptest::collection::vec(0usize..8, 0..3),
            ),
            1..5,
        ),
        shard_count in 1usize..6,
        min_support in 1u64..4,
        bounded in any::<bool>(),
        capacity in 6usize..14,
    ) {
        let base: Vec<Vec<u32>> =
            base.iter().map(|t| t.iter().copied().collect()).collect();
        let capacity = if bounded { Some(capacity) } else { None };
        let config = ShardConfig {
            shard_count,
            min_support,
            capacity,
            ..ShardConfig::default()
        };
        let mut pipeline = ShardedPipeline::new(&base, config).unwrap();
        let mut window: Vec<Vec<u32>> = base.iter().map(|t| normalize(t)).collect();
        if let Some(cap) = capacity {
            // The initial build is itself a delta, so the model must
            // absorb the same evictions.
            while window.len() > cap {
                window.remove(0);
            }
        }

        for (i, (adds, remove_picks)) in deltas.iter().enumerate() {
            let adds: Vec<Vec<u32>> =
                adds.iter().map(|t: &BTreeSet<u32>| t.iter().copied().collect()).collect();
            // Remove picks index into the current window, so every
            // remove is guaranteed present; duplicates across picks are
            // deduped to keep one occurrence per removal.
            let mut removes: Vec<Vec<u32>> = Vec::new();
            let mut taken: BTreeSet<usize> = BTreeSet::new();
            for &pick in remove_picks {
                if window.is_empty() {
                    break;
                }
                let pos = pick % window.len();
                if taken.insert(pos) {
                    removes.push(window[pos].clone());
                }
            }
            let delta = Delta { adds, removes };
            model_apply(&mut window, &delta, capacity);
            pipeline.apply(delta).unwrap();
            let outcome =
                matches_full_mine(&pipeline, &window, min_support, &format!("delta {i}"));
            prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
        }
    }
}
