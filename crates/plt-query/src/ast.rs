//! Query AST, canonical printer, and normalization.
//!
//! The printer is the parser's exact inverse (`parse(q.to_string()) ==
//! q` for every well-formed `q` — property-tested), which makes the
//! printed form of a [normalized](Query::normalize) AST a stable cache
//! key: two expressions that differ only in whitespace, keyword case,
//! item order inside `{…}`, or the order of commutative AND/OR operands
//! normalize to the same string.

use std::fmt;

use plt_core::item::Item;

/// The answering tier of a query. `Exact` is the default; `APPROX`
/// additionally admits sketch-backed operators that trade bounded error
/// for not touching the snapshot. The tier is part of the normalized
/// printed form, so plan-cache keys distinguish tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tier {
    /// Only operators that return exact rows may run.
    Exact,
    /// `APPROX [WITHIN eps]` — approximate operators allowed. `eps`
    /// caps the acceptable absolute error at `⌈eps·N⌉` transactions;
    /// `None` accepts whatever bound the sketch guarantees.
    Approx { eps: Option<f64> },
}

impl Tier {
    pub fn is_approx(self) -> bool {
        matches!(self, Tier::Approx { .. })
    }
}

/// A parsed query: the shape plus the answering tier.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub kind: QueryKind,
    pub tier: Tier,
}

impl Query {
    /// An exact-tier query (the default tier).
    pub fn exact(kind: QueryKind) -> Query {
        Query {
            kind,
            tier: Tier::Exact,
        }
    }

    /// An approximate-tier query with an optional error cap.
    pub fn approx(kind: QueryKind, eps: Option<f64>) -> Query {
        Query {
            kind,
            tier: Tier::Approx { eps },
        }
    }
}

impl From<QueryKind> for Query {
    fn from(kind: QueryKind) -> Query {
        Query::exact(kind)
    }
}

/// A query shape (tier-independent).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryKind {
    /// `SUPPORT OF {a,b}` — exact support of one itemset.
    Support { items: Vec<Item> },
    /// `TOP k [WHERE pred]` — the `k` best frequent itemsets passing the
    /// filter, in canonical order (support desc, size asc, lex asc).
    Top { k: usize, filter: Option<Pred> },
    /// `RULES [WHERE pred] [TOP k]` — association rules passing the
    /// filter, in standard quality order. `k = None` returns all.
    Rules {
        filter: Option<Pred>,
        k: Option<usize>,
    },
    /// `MINE COND {a} [TOP k]` — every frequent superset of the
    /// condition (including the condition itself), canonical order.
    MineCond { cond: Vec<Item>, k: Option<usize> },
}

/// A filter predicate. AND/OR parse left-associative; NOT binds
/// tightest; parentheses group.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
    /// `field op value`, e.g. `support >= 0.01` or `lift > 1.2`.
    Cmp {
        field: Field,
        op: CmpOp,
        value: Num,
    },
    /// `prefix LIKE {a,*}` — positional match against the leading items
    /// of the (sorted) itemset; `*` matches any single item.
    PrefixLike(Vec<PatElem>),
    /// `contains {a,b}` — all listed items are in the itemset.
    Contains(Vec<Item>),
}

/// Comparable fields. `support`/`size` apply to itemset queries,
/// `confidence`/`lift`/`support` to rule queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    Support,
    Size,
    Confidence,
    Lift,
}

impl Field {
    pub fn as_str(self) -> &'static str {
        match self {
            Field::Support => "support",
            Field::Size => "size",
            Field::Confidence => "confidence",
            Field::Lift => "lift",
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Ge,
    Gt,
    Le,
    Lt,
    Eq,
}

impl CmpOp {
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Eq => "=",
        }
    }

    /// Applies the comparison.
    pub fn holds<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Eq => lhs == rhs,
        }
    }
}

/// A numeric literal. A literal written with a decimal point is kept as
/// a fraction: compared against `support` it resolves relative to the
/// transaction count (`support >= 0.01` ⇒ `support >= ceil(0.01·|D|)`),
/// mirroring the CLI's `--min-sup` convention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Num {
    Abs(u64),
    Frac(f64),
}

impl Num {
    /// The literal as a float (for rule-quality fields).
    pub fn as_f64(self) -> f64 {
        match self {
            Num::Abs(n) => n as f64,
            Num::Frac(f) => f,
        }
    }

    /// The literal as an absolute support count: fractions resolve
    /// against the transaction count, rounding up (a transaction either
    /// meets the fraction or it does not).
    pub fn as_support(self, num_transactions: u64) -> u64 {
        match self {
            Num::Abs(n) => n,
            Num::Frac(f) => (f * num_transactions as f64).ceil().max(0.0) as u64,
        }
    }
}

/// One element of a `LIKE` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatElem {
    Item(Item),
    Any,
}

fn fmt_items(items: &[Item], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{item}")?;
    }
    write!(f, "}}")
}

impl fmt::Display for Num {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Num::Abs(n) => write!(f, "{n}"),
            // Rust's shortest-roundtrip float printing; integral fractions
            // keep an explicit ".0" so they re-lex as fractions.
            Num::Frac(x) if x.fract() == 0.0 => write!(f, "{x:.1}"),
            Num::Frac(x) => write!(f, "{x}"),
        }
    }
}

/// Precedence: OR < AND < NOT < atoms.
fn prec(p: &Pred) -> u8 {
    match p {
        Pred::Or(..) => 1,
        Pred::And(..) => 2,
        Pred::Not(..) => 3,
        _ => 4,
    }
}

/// Prints `p` as a child of an operator with precedence `parent`,
/// parenthesizing when precedence demands it — including same-precedence
/// right children, so left-associative reparsing rebuilds the same tree.
fn fmt_child(p: &Pred, parent: u8, right: bool, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let needs_parens = prec(p) < parent
        || (right && prec(p) == parent && matches!(p, Pred::And(..) | Pred::Or(..)));
    if needs_parens {
        write!(f, "({p})")
    } else {
        write!(f, "{p}")
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Or(a, b) => {
                fmt_child(a, 1, false, f)?;
                write!(f, " OR ")?;
                fmt_child(b, 1, true, f)
            }
            Pred::And(a, b) => {
                fmt_child(a, 2, false, f)?;
                write!(f, " AND ")?;
                fmt_child(b, 2, true, f)
            }
            Pred::Not(p) => {
                write!(f, "NOT ")?;
                fmt_child(p, 3, true, f)
            }
            Pred::Cmp { field, op, value } => {
                write!(f, "{} {} {}", field.as_str(), op.as_str(), value)
            }
            Pred::PrefixLike(pattern) => {
                write!(f, "prefix LIKE {{")?;
                for (i, e) in pattern.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    match e {
                        PatElem::Item(item) => write!(f, "{item}")?,
                        PatElem::Any => write!(f, "*")?,
                    }
                }
                write!(f, "}}")
            }
            Pred::Contains(items) => {
                write!(f, "contains ")?;
                fmt_items(items, f)
            }
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryKind::Support { items } => {
                write!(f, "SUPPORT OF ")?;
                fmt_items(items, f)
            }
            QueryKind::Top { k, filter } => {
                write!(f, "TOP {k}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            QueryKind::Rules { filter, k } => {
                write!(f, "RULES")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                if let Some(k) = k {
                    write!(f, " TOP {k}")?;
                }
                Ok(())
            }
            QueryKind::MineCond { cond, k } => {
                write!(f, "MINE COND ")?;
                fmt_items(cond, f)?;
                if let Some(k) = k {
                    write!(f, " TOP {k}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        match self.tier {
            // Exact is the default: printing nothing keeps every
            // pre-tier expression's normal form (and cache key) stable.
            Tier::Exact => Ok(()),
            Tier::Approx { eps: None } => write!(f, " APPROX"),
            // Reuse Num's fraction formatting so the printed form
            // re-lexes as a fraction and roundtrips.
            Tier::Approx { eps: Some(e) } => write!(f, " APPROX WITHIN {}", Num::Frac(e)),
        }
    }
}

/// Sorts and dedups an itemset literal (queries are about sets; order
/// and multiplicity in the source text carry no meaning).
fn normalize_items(items: &mut Vec<Item>) {
    items.sort_unstable();
    items.dedup();
}

fn normalize_pred(p: Pred) -> Pred {
    match p {
        Pred::And(..) => rebuild_chain(p, true),
        Pred::Or(..) => rebuild_chain(p, false),
        Pred::Not(inner) => Pred::Not(Box::new(normalize_pred(*inner))),
        Pred::Contains(mut items) => {
            normalize_items(&mut items);
            Pred::Contains(items)
        }
        atom => atom,
    }
}

/// Flattens a chain of one commutative operator, normalizes and sorts
/// the operands by their printed form, and rebuilds a left-associative
/// tree — the canonical shape for operand-order-insensitive cache keys.
fn rebuild_chain(p: Pred, and: bool) -> Pred {
    let mut operands = Vec::new();
    flatten_into(p, and, &mut operands);
    let mut operands: Vec<Pred> = operands.into_iter().map(normalize_pred).collect();
    operands.sort_by_key(|o| o.to_string());
    let mut it = operands.into_iter();
    let first = it.next().expect("chain has at least two operands");
    it.fold(first, |acc, next| {
        if and {
            Pred::And(Box::new(acc), Box::new(next))
        } else {
            Pred::Or(Box::new(acc), Box::new(next))
        }
    })
}

fn flatten_into(p: Pred, and: bool, out: &mut Vec<Pred>) {
    match (p, and) {
        (Pred::And(a, b), true) => {
            flatten_into(*a, true, out);
            flatten_into(*b, true, out);
        }
        (Pred::Or(a, b), false) => {
            flatten_into(*a, false, out);
            flatten_into(*b, false, out);
        }
        (other, _) => out.push(other),
    }
}

impl QueryKind {
    /// The canonical form: itemsets sorted and deduped, commutative
    /// AND/OR chains flattened and sorted by printed form.
    pub fn normalize(self) -> QueryKind {
        match self {
            QueryKind::Support { mut items } => {
                normalize_items(&mut items);
                QueryKind::Support { items }
            }
            QueryKind::Top { k, filter } => QueryKind::Top {
                k,
                filter: filter.map(normalize_pred),
            },
            QueryKind::Rules { filter, k } => QueryKind::Rules {
                filter: filter.map(normalize_pred),
                k,
            },
            QueryKind::MineCond { mut cond, k } => {
                normalize_items(&mut cond);
                QueryKind::MineCond { cond, k }
            }
        }
    }
}

impl Query {
    /// The canonical form: the shape normalized (itemsets sorted and
    /// deduped, commutative AND/OR chains flattened and sorted by
    /// printed form), the tier untouched (it has no symmetries — the
    /// parser already folds an explicit `EXACT` into the default). Two
    /// queries with the same meaning up to those symmetries normalize
    /// to equal ASTs, and [`cache_key`](Self::cache_key) to equal
    /// strings; queries differing only in tier do **not**.
    pub fn normalize(self) -> Query {
        Query {
            kind: self.kind.normalize(),
            tier: self.tier,
        }
    }

    /// The plan-cache key: the printed normalized form.
    pub fn cache_key(&self) -> String {
        self.clone().normalize().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printer_emits_the_grammar_examples() {
        let q = Query::exact(QueryKind::Support { items: vec![1, 2] });
        assert_eq!(q.to_string(), "SUPPORT OF {1,2}");
        let q = Query::exact(QueryKind::Top {
            k: 20,
            filter: Some(Pred::And(
                Box::new(Pred::Cmp {
                    field: Field::Support,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.01),
                }),
                Box::new(Pred::PrefixLike(vec![PatElem::Item(3), PatElem::Any])),
            )),
        });
        assert_eq!(
            q.to_string(),
            "TOP 20 WHERE support >= 0.01 AND prefix LIKE {3,*}"
        );
        let q = Query::exact(QueryKind::MineCond {
            cond: vec![7],
            k: Some(10),
        });
        assert_eq!(q.to_string(), "MINE COND {7} TOP 10");
    }

    #[test]
    fn tiers_print_as_suffixes_and_key_the_cache_separately() {
        let kind = QueryKind::Support { items: vec![1, 2] };
        let exact = Query::exact(kind.clone());
        let approx = Query::approx(kind.clone(), None);
        let within = Query::approx(kind, Some(0.05));
        assert_eq!(exact.to_string(), "SUPPORT OF {1,2}");
        assert_eq!(approx.to_string(), "SUPPORT OF {1,2} APPROX");
        assert_eq!(within.to_string(), "SUPPORT OF {1,2} APPROX WITHIN 0.05");
        // Integral eps keeps its decimal point so it re-lexes as a fraction.
        let one = Query::approx(QueryKind::Support { items: vec![1] }, Some(1.0));
        assert_eq!(one.to_string(), "SUPPORT OF {1} APPROX WITHIN 1.0");
        // Same shape, different tier: distinct cache keys.
        assert_ne!(exact.cache_key(), approx.cache_key());
        assert_ne!(approx.cache_key(), within.cache_key());
        assert!(within.tier.is_approx() && !exact.tier.is_approx());
    }

    #[test]
    fn right_nested_chains_print_with_parens() {
        let a = Pred::Cmp {
            field: Field::Support,
            op: CmpOp::Ge,
            value: Num::Abs(2),
        };
        let b = Pred::Cmp {
            field: Field::Size,
            op: CmpOp::Ge,
            value: Num::Abs(2),
        };
        let c = Pred::Contains(vec![1]);
        // And(a, And(b, c)) must not print as the left-associative
        // "a AND b AND c".
        let right = Pred::And(
            Box::new(a.clone()),
            Box::new(Pred::And(Box::new(b.clone()), Box::new(c.clone()))),
        );
        assert_eq!(
            right.to_string(),
            "support >= 2 AND (size >= 2 AND contains {1})"
        );
        // And over Or needs parens on both sides.
        let mixed = Pred::And(Box::new(Pred::Or(Box::new(a), Box::new(b))), Box::new(c));
        assert_eq!(
            mixed.to_string(),
            "(support >= 2 OR size >= 2) AND contains {1}"
        );
    }

    #[test]
    fn normalization_sorts_items_and_operands() {
        let q = Query::exact(QueryKind::Support {
            items: vec![3, 1, 3, 2],
        });
        assert_eq!(
            q.normalize(),
            Query::exact(QueryKind::Support {
                items: vec![1, 2, 3]
            })
        );

        let a = Pred::Cmp {
            field: Field::Support,
            op: CmpOp::Ge,
            value: Num::Abs(2),
        };
        let b = Pred::Contains(vec![2, 1]);
        let ab = Query::exact(QueryKind::Top {
            k: 5,
            filter: Some(Pred::And(Box::new(a.clone()), Box::new(b.clone()))),
        });
        let ba = Query::exact(QueryKind::Top {
            k: 5,
            filter: Some(Pred::And(Box::new(b), Box::new(a))),
        });
        assert_eq!(ab.cache_key(), ba.cache_key());
        assert_eq!(
            ab.cache_key(),
            "TOP 5 WHERE contains {1,2} AND support >= 2"
        );
    }

    #[test]
    fn integral_fractions_keep_their_decimal_point() {
        assert_eq!(Num::Frac(1.0).to_string(), "1.0");
        assert_eq!(Num::Frac(0.25).to_string(), "0.25");
        assert_eq!(Num::Abs(1).to_string(), "1");
    }
}
