//! Parallel Eclat — the comparison point for the X5 speedup experiment.
//!
//! Vertical mining parallelises the same way PLT does: the first-level
//! equivalence classes (one per frequent item, holding its tidset and the
//! tidsets of the items after it) are independent subtrees, fanned out on
//! the Rayon pool and mined depth-first sequentially inside each task.

use rayon::prelude::*;

use plt_core::item::{Item, Itemset, Support};
use plt_core::miner::{Miner, MiningResult};
use plt_data::transaction::TransactionDb;
use plt_data::vertical::{Tid, VerticalDb};

/// Parallel tidset Eclat.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelEclatMiner;

#[derive(Debug, Clone)]
struct Member {
    item: Item,
    tids: Vec<Tid>,
}

impl Miner for ParallelEclatMiner {
    fn name(&self) -> &'static str {
        "eclat-parallel"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        assert!(min_support >= 1, "minimum support must be at least 1");
        let mut result = MiningResult::new(min_support, transactions.len() as u64);
        let db = TransactionDb::from_sorted(transactions.to_vec());
        let vertical = VerticalDb::from_horizontal(&db);

        let mut root: Vec<Member> = vertical
            .columns()
            .filter(|(_, tids)| tids.len() as Support >= min_support)
            .map(|(item, tids)| Member {
                item,
                tids: tids.to_vec(),
            })
            .collect();
        root.sort_by_key(|m| (m.tids.len(), m.item));

        for m in &root {
            result.insert(Itemset::from_sorted(vec![m.item]), m.tids.len() as Support);
        }

        // Fan out the first-level subtrees.
        let locals: Vec<MiningResult> = (0..root.len())
            .into_par_iter()
            .map(|i| {
                let mut local = MiningResult::new(min_support, transactions.len() as u64);
                let mut prefix = vec![root[i].item];
                let mut class: Vec<Member> = Vec::new();
                for b in &root[i + 1..] {
                    let tids = VerticalDb::intersect(&root[i].tids, &b.tids);
                    if tids.len() as Support >= min_support {
                        let mut items = prefix.clone();
                        items.push(b.item);
                        local.insert(Itemset::new(items), tids.len() as Support);
                        class.push(Member { item: b.item, tids });
                    }
                }
                extend(&class, min_support, &mut prefix, &mut local);
                local
            })
            .collect();
        for local in locals {
            result.merge(local);
        }
        result
    }
}

/// Sequential depth-first extension inside one task.
fn extend(class: &[Member], min_support: Support, prefix: &mut Vec<Item>, out: &mut MiningResult) {
    for i in 0..class.len() {
        prefix.push(class[i].item);
        let mut child: Vec<Member> = Vec::new();
        for b in &class[i + 1..] {
            let tids = VerticalDb::intersect(&class[i].tids, &b.tids);
            if tids.len() as Support >= min_support {
                let mut items = prefix.clone();
                items.push(b.item);
                out.insert(Itemset::new(items), tids.len() as Support);
                child.push(Member { item: b.item, tids });
            }
        }
        if !child.is_empty() {
            extend(&child, min_support, prefix, out);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_baselines::EclatMiner;
    use plt_core::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_sequential_eclat() {
        let seq = EclatMiner::default().mine(&table1(), 2);
        let par = ParallelEclatMiner.mine(&table1(), 2);
        assert_eq!(par.sorted(), seq.sorted());
    }

    #[test]
    fn empty_and_infrequent() {
        assert!(ParallelEclatMiner.mine(&[], 1).is_empty());
        assert!(ParallelEclatMiner.mine(&table1(), 10).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Parallel Eclat agrees with brute force on random databases.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..14, 1..7),
                1..40,
            ),
            min_support in 1u64..5,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let got = ParallelEclatMiner.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
