//! # plt-baselines — comparator miners
//!
//! Full re-implementations of the algorithms the paper's related-work
//! section (§3) positions PLT against, each behind the common
//! [`plt_core::Miner`] trait so the benchmark harness can swap them freely:
//!
//! * [`apriori`] — the candidate-generation archetype (Agrawal & Srikant,
//!   VLDB'94; the paper's reference \[2\]): level-wise candidate join, prune
//!   by the anti-monotone property, support counting with a hash tree.
//!   Optionally uses a PLT [`SubsetChecker`](plt_core::subset::SubsetChecker)
//!   for the prune step (the paper's "promising tool for most of the
//!   existing data mining approaches" claim; experiment X7).
//! * [`fpgrowth`] — the pattern-growth archetype (Han, Pei & Yin,
//!   SIGMOD'00; reference \[3\]): FP-tree with header table and node links,
//!   conditional pattern bases, single-path shortcut.
//! * [`eclat`] — vertical mining by TID-set intersection, with the diffset
//!   optimisation of Zaki & Gouda (KDD'03; reference \[16\]).
//! * [`hmine`] — hyper-structure mining with pseudo-projections in the
//!   spirit of H-Mine (Pei et al., ICDM'01; reference \[7\]/\[8\] — the paper
//!   cites it as the sparse-data answer to FP-growth's overhead).
//! * [`ais`] — the original AIS algorithm (reference \[1\]): candidates
//!   generated during the scan by extending frontier itemsets.
//! * [`partition`] — the two-pass Partition algorithm (VLDB'95): local
//!   mining per memory-sized chunk, exact recount of the candidate union.
//! * [`dic`] — Dynamic Itemset Counting (SIGMOD'97): block-circular scan
//!   that starts counting an itemset as soon as its subsets look
//!   frequent.
//! * [`sampling`] — Toivonen's sampling algorithm (VLDB'96): mine a
//!   sample at lowered support, verify through the negative border,
//!   retry/fall back on a miss — always exact.

pub mod ais;
pub mod apriori;
pub mod dic;
pub mod eclat;
pub mod fpgrowth;
pub mod hmine;
pub mod partition;
pub mod sampling;

pub use ais::AisMiner;
pub use apriori::{AprioriMiner, CountingStrategy, PruneStrategy};
pub use dic::DicMiner;
pub use eclat::{EclatMiner, TidRepr};
pub use fpgrowth::FpGrowthMiner;
pub use hmine::HMineMiner;
pub use partition::PartitionMiner;
pub use sampling::{negative_border, SamplingMiner, SamplingOutcome};
