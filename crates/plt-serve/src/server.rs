//! TCP server: multiple acceptor threads over one listener, one handler
//! thread per connection, engine shared via `Arc`.
//!
//! Built on `std::net` only. The listener is `try_clone`d into N
//! acceptor threads (the kernel load-balances `accept` across them), so
//! accept throughput scales with cores without an async runtime. Each
//! connection speaks the framed protocol of [`proto`](crate::proto)
//! until EOF or a `shutdown` request; handlers only touch the engine
//! through `Arc`, so a slow connection never blocks another.
//!
//! Robustness knobs (all in [`ServerConfig`]): per-connection read and
//! write deadlines (a stalled peer is timed out, counted, and dropped —
//! it cannot pin a handler thread forever), a max-frame limit enforced
//! before allocation, and a connection cap — past it, new connections get
//! an error frame and are refused rather than queueing unboundedly. A
//! [`FaultPlan`] wired into the config injects deterministic faults into
//! the server's own reads and writes for chaos testing.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::builder::IngestQueue;
use crate::engine::Engine;
use crate::fault::{FaultPlan, FaultyStream, Site};
use crate::json::Json;
use crate::proto::{
    err_response, negotiate_version, ok_response, read_frame_limited, render_payload,
    render_response, write_frame, write_frame_with, Request, MAX_FRAME_BYTES,
};
use crate::reader_pool::ReaderCache;
use crate::snapshot::Snapshot;

/// Which concurrency model serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerModel {
    /// One handler thread per connection (the original model). Simple,
    /// portable, and the differential oracle for the reactor.
    #[default]
    Threads,
    /// Epoll reactor threads multiplexing nonblocking connections
    /// ([`reactor`](crate::reactor)). Linux-only; elsewhere `serve`
    /// falls back to `Threads`.
    Reactor,
}

impl ServerModel {
    /// Parses the `--server-model` CLI spelling.
    pub fn parse(s: &str) -> Result<ServerModel, String> {
        match s {
            "threads" => Ok(ServerModel::Threads),
            "reactor" => Ok(ServerModel::Reactor),
            other => Err(format!(
                "unknown server model {other:?} (expected \"threads\" or \"reactor\")"
            )),
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ServerModel::Threads => "threads",
            ServerModel::Reactor => "reactor",
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrency model; see [`ServerModel`].
    pub server_model: ServerModel,
    /// Acceptor threads sharing the listener (threads model only; the
    /// reactor model has one dispatching acceptor). Defaults to
    /// available parallelism, capped at 8.
    pub acceptors: usize,
    /// Reactor threads (reactor model only). Defaults to available
    /// parallelism, capped at 8.
    pub reactors: usize,
    /// Accepted-but-unregistered sockets queued per reactor; past it the
    /// acceptor sheds (reactor model only).
    pub accept_backlog: usize,
    /// Per-connection read deadline. A peer that sends nothing for this
    /// long is timed out and dropped. `None` blocks forever.
    pub read_deadline: Option<Duration>,
    /// Per-connection write deadline. A peer that stops draining its
    /// socket for this long is timed out and dropped. `None` blocks
    /// forever.
    pub write_deadline: Option<Duration>,
    /// Largest accepted frame, checked before allocation.
    pub max_frame: usize,
    /// Concurrent-connection cap; connections past it are answered with
    /// an error frame and refused (backpressure, not an unbounded queue).
    pub max_connections: usize,
    /// Deterministic fault injection for the server's own I/O. `None` in
    /// production.
    pub fault: Option<Arc<FaultPlan>>,
    /// Shared plt-obs recorder; reactor threads merge their span/counter
    /// batches into it (reactor model only).
    pub obs: Option<Arc<Mutex<plt_obs::MetricsRecorder>>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServerConfig {
            server_model: ServerModel::Threads,
            acceptors: cores.min(8),
            reactors: cores.min(8),
            accept_backlog: 256,
            read_deadline: Some(Duration::from_secs(30)),
            write_deadline: Some(Duration::from_secs(10)),
            max_frame: MAX_FRAME_BYTES,
            max_connections: 1024,
            fault: None,
            obs: None,
        }
    }
}

/// A running server. Stop it with [`shutdown`](Self::shutdown) or by
/// sending the protocol `shutdown` request; either way
/// [`join`](Self::join) returns once every acceptor has exited.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Extra wakeups fired on shutdown (reactor eventfds); the acceptor
    /// dial in [`wake_acceptors`] covers threads parked in `accept`.
    wake_fns: Vec<Box<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    pub(crate) fn from_parts(
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        threads: Vec<JoinHandle<()>>,
        wake_fns: Vec<Box<dyn Fn() + Send + Sync>>,
    ) -> ServerHandle {
        ServerHandle {
            addr,
            stop,
            threads,
            wake_fns,
        }
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the server threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for wake in &self.wake_fns {
            wake();
        }
        wake_acceptors(self.addr, self.threads.len());
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Blocks until the server stops (e.g. a client sent `shutdown`).
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Decrements the active-connection count when a handler exits, however
/// it exits.
struct ConnectionPermit(Arc<AtomicUsize>);

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn try_acquire(active: &Arc<AtomicUsize>, max: usize) -> Option<ConnectionPermit> {
    if active.fetch_add(1, Ordering::SeqCst) >= max {
        active.fetch_sub(1, Ordering::SeqCst);
        return None;
    }
    Some(ConnectionPermit(active.clone()))
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving
/// `engine`. `ingest` wires the `INGEST` endpoint to a snapshot
/// builder; without it, ingest requests are answered with an error.
pub fn serve(
    addr: &str,
    engine: Arc<Engine>,
    ingest: Option<IngestQueue>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    // Query executions emit `query.*` counters into the shared recorder
    // under either server model (the reactor additionally merges its
    // per-thread span batches into it).
    if let Some(obs) = &config.obs {
        engine.attach_obs(obs.clone());
    }
    #[cfg(target_os = "linux")]
    if config.server_model == ServerModel::Reactor {
        return crate::reactor::serve_reactor(listener, engine, ingest, config, addr);
    }
    // Non-Linux builds have no epoll; the thread model is the fallback.
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let acceptors = (0..config.acceptors.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let engine = engine.clone();
            let ingest = ingest.clone();
            let stop = stop.clone();
            let active = active.clone();
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("plt-serve-acceptor-{i}"))
                .spawn(move || acceptor_loop(listener, engine, ingest, stop, active, config, addr))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(ServerHandle {
        addr,
        stop,
        threads: acceptors,
        wake_fns: Vec::new(),
    })
}

#[allow(clippy::too_many_arguments)]
fn acceptor_loop(
    listener: TcpListener,
    engine: Arc<Engine>,
    ingest: Option<IngestQueue>,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    config: ServerConfig,
    addr: SocketAddr,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let permit = match try_acquire(&active, config.max_connections) {
                    Some(p) => p,
                    None => {
                        // At capacity: say so and refuse, rather than
                        // letting the backlog grow without bound.
                        engine
                            .metrics()
                            .rejected_connections
                            .fetch_add(1, Ordering::Relaxed);
                        let mut w = BufWriter::new(stream);
                        let _ = write_frame(
                            &mut w,
                            &err_response("shed: server at connection capacity").to_string(),
                        );
                        continue;
                    }
                };
                let engine = engine.clone();
                let ingest = ingest.clone();
                let stop = stop.clone();
                let config = config.clone();
                let _ = std::thread::Builder::new()
                    .name("plt-serve-conn".into())
                    .spawn(move || {
                        let _permit = permit;
                        if handle_connection(stream, &engine, ingest.as_ref(), &stop, &config)
                            == ConnectionOutcome::ShutdownRequested
                        {
                            wake_acceptors(addr, usize::MAX);
                        }
                    });
            }
            Err(_) => {
                // Accept errors are transient (EMFILE, aborted
                // handshakes); re-check the stop flag and continue.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

#[derive(PartialEq, Eq)]
enum ConnectionOutcome {
    Closed,
    ShutdownRequested,
}

/// What a dispatched request wants the serving loop to do. Shared by
/// both server models so their observable behavior cannot drift.
pub(crate) enum Dispatch {
    /// Write this response and keep serving.
    Respond(String),
    /// Write this response, then stop the whole server.
    ShutdownRequested(String),
    /// An `ingest {wait: true}` was submitted; run the blocking
    /// `IngestQueue::flush` (inline for the threads model, on a waiter
    /// thread for the reactor) and answer with `accepted` + the
    /// published generation.
    AwaitFlush { accepted: u64 },
}

/// Parses and dispatches one request payload. Everything except the
/// flush wait and the stop-flag plumbing happens here, identically for
/// both server models. `reader`, when given, pins snapshots through a
/// per-worker cache (the reactor's lock-free path). `version` is the
/// connection's negotiated envelope version: a `hello` updates it, and
/// every response is rendered through it — the engine (and its response
/// cache) always produces the flat v1 shape, so one cached payload
/// serves both versions.
pub(crate) fn dispatch_request(
    payload: &str,
    engine: &Engine,
    ingest: Option<&IngestQueue>,
    reader: Option<&mut ReaderCache<Snapshot>>,
    version: &mut u64,
) -> Dispatch {
    let request = match Json::parse(payload) {
        Err(e) => {
            engine
                .metrics()
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return Dispatch::Respond(render_response(&err_response(e.to_string()), *version));
        }
        Ok(v) => match Request::from_json(&v) {
            Err(e) => {
                engine
                    .metrics()
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return Dispatch::Respond(render_response(&err_response(e), *version));
            }
            Ok(r) => r,
        },
    };
    match request {
        Request::Shutdown => Dispatch::ShutdownRequested(render_payload(
            &engine.handle(&Request::Shutdown),
            *version,
        )),
        Request::Hello { version: requested } => {
            // Negotiate first: the acknowledgement already arrives in
            // the newly agreed envelope.
            *version = negotiate_version(requested);
            Dispatch::Respond(render_payload(
                &engine.handle(&Request::Hello { version: requested }),
                *version,
            ))
        }
        Request::Ingest { transactions, wait } => match ingest {
            None => Dispatch::Respond(render_response(
                &err_response("this server has no ingest pipeline"),
                *version,
            )),
            Some(queue) => {
                let accepted = transactions.len() as u64;
                if !queue.ingest(transactions) {
                    Dispatch::Respond(render_response(
                        &err_response("snapshot builder has exited"),
                        *version,
                    ))
                } else if wait {
                    Dispatch::AwaitFlush { accepted }
                } else {
                    Dispatch::Respond(render_response(
                        &ok_response(vec![("accepted", Json::from(accepted))]),
                        *version,
                    ))
                }
            }
        },
        request => Dispatch::Respond(render_payload(
            &match reader {
                Some(cache) => engine.handle_cached(&request, cache),
                None => engine.handle(&request),
            },
            *version,
        )),
    }
}

/// Is this I/O error a blown read/write deadline?
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    ingest: Option<&IngestQueue>,
    stop: &AtomicBool,
    config: &ServerConfig,
) -> ConnectionOutcome {
    // Deadlines turn a stalled peer into an I/O error on this thread
    // instead of an eternally parked handler.
    if stream.set_read_timeout(config.read_deadline).is_err()
        || stream.set_write_timeout(config.write_deadline).is_err()
    {
        return ConnectionOutcome::Closed;
    }
    let read_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return ConnectionOutcome::Closed,
    };
    // With a fault plan, the server's own byte stream misbehaves too —
    // boxed so faulted and clean connections share one handler loop.
    let (read_half, write_half): (Box<dyn Read>, Box<dyn Write>) = match &config.fault {
        Some(plan) => (
            Box::new(FaultyStream::new(
                read_stream,
                plan.clone(),
                Site::ServerRead,
            )),
            Box::new(FaultyStream::new(stream, plan.clone(), Site::ServerWrite)),
        ),
        None => (Box::new(read_stream), Box::new(stream)),
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(write_half);
    let frame_fault = config
        .fault
        .as_deref()
        .map(|plan| (plan, Site::ServerWrite));
    // Envelope version negotiated by `hello`; connections that never
    // send one stay on the original flat v1 responses.
    let mut version = 1u64;
    loop {
        let payload = match read_frame_limited(&mut reader, config.max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => return ConnectionOutcome::Closed,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Tell the peer what was wrong with the frame, then
                // drop the connection — framing is unrecoverable.
                engine
                    .metrics()
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_frame_with(
                    &mut writer,
                    &render_response(&err_response(e.to_string()), version),
                    frame_fault,
                );
                return ConnectionOutcome::Closed;
            }
            Err(e) => {
                if is_timeout(&e) {
                    engine.metrics().timeouts.fetch_add(1, Ordering::Relaxed);
                }
                return ConnectionOutcome::Closed;
            }
        };
        let response = match dispatch_request(&payload, engine, ingest, None, &mut version) {
            Dispatch::Respond(response) => response,
            Dispatch::ShutdownRequested(response) => {
                stop.store(true, Ordering::SeqCst);
                let _ = write_frame_with(&mut writer, &response, frame_fault);
                return ConnectionOutcome::ShutdownRequested;
            }
            Dispatch::AwaitFlush { accepted } => match ingest.and_then(|q| q.flush()) {
                Some(generation) => render_response(
                    &ok_response(vec![
                        ("accepted", Json::from(accepted)),
                        ("generation", Json::from(generation)),
                        ("stale", Json::Bool(engine.is_stale())),
                    ]),
                    version,
                ),
                None => render_response(&err_response("snapshot builder has exited"), version),
            },
        };
        match write_frame_with(&mut writer, &response, frame_fault) {
            Ok(()) => {}
            Err(e) => {
                if is_timeout(&e) {
                    engine.metrics().timeouts.fetch_add(1, Ordering::Relaxed);
                }
                return ConnectionOutcome::Closed;
            }
        }
    }
}

/// Unblocks acceptor threads stuck in `accept` by dialing the listener.
/// Best effort; `n` connects at most (acceptors count or a few).
pub(crate) fn wake_acceptors(addr: SocketAddr, n: usize) {
    for _ in 0..n.min(16) {
        match TcpStream::connect(addr) {
            Ok(_) => {}
            Err(_) => break,
        }
    }
}
