//! Offline shim for the subset of `bytes` 1.x this workspace uses:
//! [`Buf`] over byte slices, [`BufMut`] over `Vec<u8>`, and the
//! cheaply-cloneable immutable [`Bytes`] buffer.

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics when empty.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "buffer exhausted");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Append-only write cursor.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, b: u8) {
        (**self).put_u8(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// Immutable reference-counted byte buffer. Clones share the allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_buf_reads_in_order() {
        let mut buf: &[u8] = &[1, 2, 3];
        assert_eq!(buf.remaining(), 3);
        assert_eq!(buf.get_u8(), 1);
        assert_eq!(buf.get_u8(), 2);
        assert!(buf.has_remaining());
        assert_eq!(buf.get_u8(), 3);
        assert!(!buf.has_remaining());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn reading_past_end_panics() {
        let mut buf: &[u8] = &[];
        buf.get_u8();
    }

    #[test]
    fn vec_bufmut_appends() {
        let mut out = Vec::new();
        out.put_u8(9);
        out.put_slice(&[7, 8]);
        assert_eq!(out, vec![9, 7, 8]);
    }

    #[test]
    fn bytes_shares_and_derefs() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(c.len(), 4);
        assert_eq!(Bytes::copy_from_slice(&b), b);
    }
}
