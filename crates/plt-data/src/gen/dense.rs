//! Dense-dataset generator (chess/mushroom-like).
//!
//! Dense FIM benchmarks (chess: 37 items/transaction over a 75-item
//! universe; mushroom: 23 over 119) have every transaction covering a large
//! fraction of a *small* item universe, which makes the number of frequent
//! itemsets explode at low support. The paper positions its top-down
//! approach exactly here ("the conditional approach is best used when the
//! data is dense and a high support count is required" — and conversely
//! top-down "for situations where a very low minimum support is provided").
//!
//! The generator draws each transaction by including every item `i`
//! independently with probability `p_i`, where the `p_i` fall linearly from
//! `density_hi` to `density_lo` across the universe — a skew that mimics the
//! near-constant columns of chess-like data and guarantees a deep lattice
//! of frequent itemsets among the high-probability items.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::transaction::{Item, TransactionDb};

/// Parameters of the dense generator.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseConfig {
    /// Number of transactions.
    pub num_transactions: usize,
    /// Item universe size (keep small — every subset of a transaction is a
    /// potential frequent itemset).
    pub num_items: u32,
    /// Inclusion probability of item 0 (the most common item).
    pub density_hi: f64,
    /// Inclusion probability of the last item.
    pub density_lo: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DenseConfig {
    fn default() -> Self {
        DenseConfig {
            num_transactions: 1_000,
            num_items: 16,
            density_hi: 0.9,
            density_lo: 0.2,
            seed: 0x000d_ecaf,
        }
    }
}

impl DenseConfig {
    /// Dense config sized for quick tests.
    pub fn small(n: usize) -> Self {
        DenseConfig {
            num_transactions: n,
            num_items: 10,
            ..Default::default()
        }
    }

    /// Conventional label, e.g. `DENSE16.D1000`.
    pub fn label(&self) -> String {
        format!("DENSE{}.D{}", self.num_items, self.num_transactions)
    }
}

/// The dense generator.
#[derive(Debug, Clone)]
pub struct DenseGenerator {
    config: DenseConfig,
    probs: Vec<f64>,
}

impl DenseGenerator {
    /// Precomputes per-item inclusion probabilities.
    pub fn new(config: DenseConfig) -> DenseGenerator {
        assert!(config.num_items >= 1);
        assert!((0.0..=1.0).contains(&config.density_hi));
        assert!((0.0..=1.0).contains(&config.density_lo));
        let n = config.num_items as usize;
        let probs = (0..n)
            .map(|i| {
                let t = if n == 1 {
                    0.0
                } else {
                    i as f64 / (n - 1) as f64
                };
                config.density_hi + t * (config.density_lo - config.density_hi)
            })
            .collect();
        DenseGenerator { config, probs }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DenseConfig {
        &self.config
    }

    /// Generates the database.
    pub fn generate(&self) -> TransactionDb {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut transactions = Vec::with_capacity(self.config.num_transactions);
        for _ in 0..self.config.num_transactions {
            let t: Vec<Item> = self
                .probs
                .iter()
                .enumerate()
                .filter(|&(_, &p)| rng.gen::<f64>() < p)
                .map(|(i, _)| i as Item)
                .collect();
            transactions.push(t);
        }
        TransactionDb::from_sorted(transactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DbStats;

    #[test]
    fn deterministic_for_a_seed() {
        let a = DenseGenerator::new(DenseConfig::small(100)).generate();
        let b = DenseGenerator::new(DenseConfig::small(100)).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn density_is_high() {
        let db = DenseGenerator::new(DenseConfig::default()).generate();
        let s = DbStats::of(&db);
        assert_eq!(s.num_transactions, 1_000);
        assert!(s.num_items <= 16);
        // Average density (0.9 + 0.2) / 2 = 0.55 of the universe.
        assert!(s.density > 0.40, "density {}", s.density);
    }

    #[test]
    fn first_item_is_near_universal() {
        let db = DenseGenerator::new(DenseConfig::default()).generate();
        let sup0 = db.support_by_scan(&[0]);
        assert!(
            sup0 > 850,
            "item 0 should appear in ~90% of transactions, saw {sup0}"
        );
        let sup_last = db.support_by_scan(&[15]);
        assert!(
            sup_last < 300,
            "last item should be rare-ish, saw {sup_last}"
        );
    }

    #[test]
    fn single_item_universe() {
        let db = DenseGenerator::new(DenseConfig {
            num_items: 1,
            num_transactions: 50,
            density_hi: 1.0,
            density_lo: 0.0, // ignored for n=1: prob = density_hi
            seed: 1,
        })
        .generate();
        assert!(db.transactions().iter().all(|t| t == &vec![0]));
    }

    #[test]
    fn label_formats() {
        assert_eq!(DenseConfig::default().label(), "DENSE16.D1000");
    }
}
