//! Prints every exhibit of the paper, regenerated: Table 1's item scan,
//! the lexicographic tree (Fig. 1), its positional annotation (Fig. 2),
//! the constructed PLT in both views (Fig. 3), the database after the
//! top-down pass (Fig. 4), and D's conditional database (Fig. 5).
//!
//! The same artefacts are asserted exactly in `tests/paper_figures.rs`;
//! this example exists to *see* them.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use plt_bench::figures;

fn main() {
    println!("=== E-T1: Table 1 scan ===\n{}", figures::exp_t1());
    println!("=== E-F1: lexicographic tree ===\n{}", figures::exp_f1().1);
    println!(
        "=== E-F2: positional annotation ===\n{}",
        figures::exp_f2().1
    );
    println!("=== E-F3: the PLT ===\n{}", figures::exp_f3().1);
    println!("=== E-F4: after top-down ===\n{}", figures::exp_f4().1);
    println!(
        "=== E-F5: D's conditional database ===\n{}",
        figures::exp_f5().3
    );
}
