//! X9 — rank-policy ablation: conditional mining under the three item
//! orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_core::miner::Miner;
use plt_core::{ConditionalMiner, RankPolicy};

fn bench(c: &mut Criterion) {
    let workloads = [
        ("sparse", datasets::sparse(2_000), 20u64),
        ("dense", datasets::dense(800, 16), 320u64),
    ];
    for (name, db, min_sup) in &workloads {
        let mut group = c.benchmark_group(format!("x9/{name}"));
        group.sample_size(10);
        for (label, policy) in [
            ("lexicographic", RankPolicy::Lexicographic),
            ("freq-descending", RankPolicy::FrequencyDescending),
            ("freq-ascending", RankPolicy::FrequencyAscending),
        ] {
            let miner = ConditionalMiner::with_policy(policy);
            group.bench_with_input(BenchmarkId::from_parameter(label), db, |b, db| {
                b.iter(|| miner.mine(db, *min_sup))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
