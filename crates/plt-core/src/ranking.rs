//! The `Rank` function (Definition 4.1.1).
//!
//! `Rank` maps each **frequent** item to a unique integer `1..=n` so that a
//! chosen total order over items is preserved. The paper fixes the
//! lexicographic order of the item vocabulary; this module generalises the
//! order to a [`RankPolicy`] because frequency-based orders are the standard
//! knob in pattern-growth miners (FP-growth orders by descending frequency)
//! and make for a meaningful ablation — all miners are correct under any
//! policy, only the shape of the structure changes.

use crate::hash::FxHashMap;
use crate::item::{Item, Rank, Support};

/// The total order that the `Rank` function must preserve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RankPolicy {
    /// Items ranked by their natural (`u32`) order — the paper's choice.
    #[default]
    Lexicographic,
    /// Most frequent item gets rank 1. Mirrors FP-growth's header order;
    /// tends to give small position values early in the vectors.
    FrequencyDescending,
    /// Least frequent item gets rank 1; ties broken lexicographically.
    FrequencyAscending,
}

/// A frozen `Rank` function: a bijection between the frequent items of a
/// database and the ranks `1..=n`.
///
/// Built once per mining run from the first database scan
/// (see [`crate::construct`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemRanking {
    /// `rank_of[item] ∈ 1..=n`; absent for infrequent/unseen items.
    rank_of: FxHashMap<Item, Rank>,
    /// `item_of[rank − 1]` recovers the item; index 0 holds the item with
    /// rank 1.
    item_of: Vec<Item>,
    /// Support of each ranked item, indexed like `item_of`.
    support_of: Vec<Support>,
    policy: RankPolicy,
}

impl ItemRanking {
    /// Builds the ranking from `(item, support)` pairs of the items that met
    /// the minimum support, ordering them per `policy`.
    ///
    /// Ties under the frequency policies are broken by item id so that the
    /// ranking (and therefore every position vector) is deterministic.
    pub fn from_frequent_items(
        mut frequent: Vec<(Item, Support)>,
        policy: RankPolicy,
    ) -> ItemRanking {
        match policy {
            RankPolicy::Lexicographic => frequent.sort_unstable_by_key(|&(item, _)| item),
            RankPolicy::FrequencyDescending => {
                frequent.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)))
            }
            RankPolicy::FrequencyAscending => {
                frequent.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            }
        }
        let mut rank_of = FxHashMap::default();
        let mut item_of = Vec::with_capacity(frequent.len());
        let mut support_of = Vec::with_capacity(frequent.len());
        for (i, &(item, sup)) in frequent.iter().enumerate() {
            let prev = rank_of.insert(item, (i + 1) as Rank);
            debug_assert!(prev.is_none(), "duplicate item {item} in frequency table");
            item_of.push(item);
            support_of.push(sup);
        }
        ItemRanking {
            rank_of,
            item_of,
            support_of,
            policy,
        }
    }

    /// Convenience constructor: scan a database of transactions, count item
    /// supports and rank the items meeting `min_support`. This is the
    /// paper's "generate frequent 1-items" first scan.
    pub fn scan<T: AsRef<[Item]>>(
        transactions: &[T],
        min_support: Support,
        policy: RankPolicy,
    ) -> ItemRanking {
        let mut counts: FxHashMap<Item, Support> = FxHashMap::default();
        for t in transactions {
            for &item in t.as_ref() {
                *counts.entry(item).or_insert(0) += 1;
            }
        }
        let frequent = counts
            .into_iter()
            .filter(|&(_, sup)| sup >= min_support)
            .collect();
        ItemRanking::from_frequent_items(frequent, policy)
    }

    /// `Rank(item)`, or `None` when the item is infrequent/unknown.
    #[inline]
    pub fn rank(&self, item: Item) -> Option<Rank> {
        self.rank_of.get(&item).copied()
    }

    /// Inverse of [`rank`](Self::rank): the item holding `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is 0 or exceeds the number of ranked items.
    #[inline]
    pub fn item(&self, rank: Rank) -> Item {
        self.item_of[(rank - 1) as usize]
    }

    /// Support of the item holding `rank`, recorded at scan time.
    #[inline]
    pub fn support_of_rank(&self, rank: Rank) -> Support {
        self.support_of[(rank - 1) as usize]
    }

    /// Number of ranked (frequent) items; ranks run `1..=len()`.
    #[inline]
    pub fn len(&self) -> usize {
        self.item_of.len()
    }

    /// True when no item met the support threshold.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.item_of.is_empty()
    }

    /// The policy the ranking was built with.
    #[inline]
    pub fn policy(&self) -> RankPolicy {
        self.policy
    }

    /// Projects a transaction onto its ranked items and returns the ranks in
    /// **strictly increasing** order — the exact preprocessing Algorithm 1
    /// applies to each transaction in the second scan.
    ///
    /// Infrequent items are silently filtered (that is the point of the
    /// projection); duplicate items within a transaction are an input error
    /// handled by the construction layer.
    pub fn project(&self, transaction: &[Item]) -> Vec<Rank> {
        let mut ranks: Vec<Rank> = transaction
            .iter()
            .filter_map(|&item| self.rank(item))
            .collect();
        ranks.sort_unstable();
        ranks
    }

    /// Maps a strictly increasing rank sequence back to items, returned in
    /// ascending *item* order (the public result representation).
    pub fn items_for_ranks(&self, ranks: &[Rank]) -> Vec<Item> {
        let mut items: Vec<Item> = ranks.iter().map(|&r| self.item(r)).collect();
        items.sort_unstable();
        items
    }

    /// All `(item, rank, support)` triples, in rank order. Used by the
    /// physical-tree renderer and the experiments binary.
    pub fn entries(&self) -> impl Iterator<Item = (Item, Rank, Support)> + '_ {
        self.item_of
            .iter()
            .zip(self.support_of.iter())
            .enumerate()
            .map(|(i, (&item, &sup))| (item, (i + 1) as Rank, sup))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1() -> Vec<Vec<Item>> {
        // Paper Table 1, items A..F mapped to 0..5.
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn paper_example_ranks_lexicographically() {
        // §4.2: frequent 1-items {(A,4),(B,5),(C,5),(D,4)}; Rank(A)=1 …
        // Rank(D)=4. E and F have support 1 < 2 and get no rank.
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::Lexicographic);
        assert_eq!(r.len(), 4);
        assert_eq!(r.rank(0), Some(1));
        assert_eq!(r.rank(1), Some(2));
        assert_eq!(r.rank(2), Some(3));
        assert_eq!(r.rank(3), Some(4));
        assert_eq!(r.rank(4), None);
        assert_eq!(r.rank(5), None);
        assert_eq!(r.support_of_rank(1), 4);
        assert_eq!(r.support_of_rank(2), 5);
        assert_eq!(r.support_of_rank(3), 5);
        assert_eq!(r.support_of_rank(4), 4);
    }

    #[test]
    fn rank_is_a_bijection() {
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::Lexicographic);
        for rank in 1..=r.len() as Rank {
            assert_eq!(r.rank(r.item(rank)), Some(rank));
        }
    }

    #[test]
    fn frequency_descending_puts_most_frequent_first() {
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::FrequencyDescending);
        // B and C have support 5 (tie broken by item id: B=1 before C=2),
        // then A and D with support 4.
        assert_eq!(r.item(1), 1);
        assert_eq!(r.item(2), 2);
        assert_eq!(r.item(3), 0);
        assert_eq!(r.item(4), 3);
    }

    #[test]
    fn frequency_ascending_puts_least_frequent_first() {
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::FrequencyAscending);
        assert_eq!(r.item(1), 0); // A, support 4, ties with D, A < D
        assert_eq!(r.item(2), 3);
        assert_eq!(r.item(3), 1);
        assert_eq!(r.item(4), 2);
    }

    #[test]
    fn project_filters_and_sorts() {
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::Lexicographic);
        // Transaction 4 = ABDE; E is infrequent, so the projection is the
        // rank sequence of {A,B,D} = [1,2,4].
        assert_eq!(r.project(&[0, 1, 3, 4]), vec![1, 2, 4]);
        // Order of the input does not matter.
        assert_eq!(r.project(&[4, 3, 1, 0]), vec![1, 2, 4]);
        // A transaction of only infrequent items projects to nothing.
        assert_eq!(r.project(&[4, 5]), Vec::<Rank>::new());
    }

    #[test]
    fn items_for_ranks_round_trips() {
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::FrequencyDescending);
        let ranks = r.project(&[0, 1, 2, 3]);
        let mut items = r.items_for_ranks(&ranks);
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_when_nothing_is_frequent() {
        let r = ItemRanking::scan(&table1(), 100, RankPolicy::Lexicographic);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn entries_iterate_in_rank_order() {
        let r = ItemRanking::scan(&table1(), 2, RankPolicy::Lexicographic);
        let entries: Vec<_> = r.entries().collect();
        assert_eq!(entries, vec![(0, 1, 4), (1, 2, 5), (2, 3, 5), (3, 4, 4)]);
    }
}
