//! The cost-based planner: logical query → physical operator.
//!
//! Each query shape admits several physical operators (see the table in
//! `DESIGN.md` §13); the planner estimates each candidate's cost from
//! the source's cardinality stats and picks the cheapest, breaking ties
//! toward the earlier (more specialized) candidate. All candidates
//! return identical rows — the choice affects time, never results —
//! which is what lets `tests/query_equivalence.rs` force each operator
//! in turn and compare.

use plt_core::error::{PltError, Result};

use crate::ast::Query;
use crate::source::Source;

/// A physical operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysOp {
    /// Canonical-key point lookup on the snapshot index (Lemma 4.1.2),
    /// oracle fallback for infrequent sets. `SUPPORT OF` only.
    IndexPoint,
    /// Best-first traversal of the extension index (Lemma 4.1.3) with
    /// top-k early termination. `TOP` and `MINE COND`.
    ExtTraverse,
    /// Ordered scan of the precomputed rule index with confidence-bound
    /// early termination. `RULES` only.
    RuleScan,
    /// On-demand conditional mining of the sub-PLT rooted at the
    /// condition. `MINE COND` only.
    CondMine,
    /// Brute-force scan — the universal fallback and the differential
    /// oracle.
    FullScan,
}

impl PhysOp {
    pub fn as_str(self) -> &'static str {
        match self {
            PhysOp::IndexPoint => "index_point",
            PhysOp::ExtTraverse => "ext_traverse",
            PhysOp::RuleScan => "rule_scan",
            PhysOp::CondMine => "cond_mine",
            PhysOp::FullScan => "full_scan",
        }
    }
}

/// A compiled plan: the chosen operator and its estimated cost (in
/// abstract "row touches", comparable only within one planning call).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    pub op: PhysOp,
    pub cost: f64,
}

/// The physical operators applicable to a query shape, most specialized
/// first. `FullScan` applies to everything and is always last.
pub fn applicable_ops(q: &Query) -> &'static [PhysOp] {
    match q {
        Query::Support { .. } => &[PhysOp::IndexPoint, PhysOp::FullScan],
        Query::Top { .. } => &[PhysOp::ExtTraverse, PhysOp::FullScan],
        Query::Rules { .. } => &[PhysOp::RuleScan, PhysOp::FullScan],
        Query::MineCond { .. } => &[PhysOp::ExtTraverse, PhysOp::CondMine, PhysOp::FullScan],
    }
}

/// Estimated cost of running `op` on `q` against a source with the
/// given stats. See `DESIGN.md` §13 for the model's derivation.
fn cost_of(op: PhysOp, q: &Query, src: &dyn Source) -> f64 {
    let stats = src.stats();
    let n_sets = stats.num_itemsets as f64;
    let n_rules = stats.num_rules as f64;
    let n_vectors = stats.num_vectors as f64;
    // Average children per traversal node; floor 2 keeps sparse indexes
    // from looking free.
    let fanout = (n_sets / (stats.num_roots.max(1) as f64)).max(2.0);
    match (op, q) {
        (PhysOp::IndexPoint, Query::Support { items }) => items.len() as f64,
        (PhysOp::FullScan, Query::Support { .. }) => n_vectors,
        (PhysOp::ExtTraverse, Query::Top { k, filter }) => {
            // Filtered traversals expand past non-passing nodes, so a
            // filter inflates the frontier estimate.
            let selectivity = if filter.is_some() { 4.0 } else { 1.0 };
            ((*k as f64) + 1.0) * fanout * selectivity
        }
        (PhysOp::FullScan, Query::Top { .. }) => n_sets,
        (PhysOp::RuleScan, Query::Rules { filter, .. }) => {
            // A top-level confidence bound c lets the scan stop after
            // roughly the (1 - c) fraction of the confidence-sorted
            // index (clamped: even c = 1.0 reads some prefix).
            match filter.as_ref().and_then(crate::exec::confidence_bound) {
                Some((c, _)) => n_rules * (1.0 - c).clamp(0.02, 1.0),
                None => n_rules,
            }
        }
        (PhysOp::FullScan, Query::Rules { .. }) => n_rules,
        (PhysOp::ExtTraverse, Query::MineCond { k, .. }) => {
            let k_eff = k.map(|k| k as f64).unwrap_or(n_sets);
            (k_eff + 1.0) * fanout
        }
        (PhysOp::CondMine, Query::MineCond { cond, .. }) => {
            // Rebuild cost scales with the conditional database size
            // (= support of the condition), plus a fixed mining setup.
            let (s_cond, _) = src.support_of(cond);
            s_cond as f64 * 4.0 + 16.0
        }
        (PhysOp::FullScan, Query::MineCond { .. }) => n_sets,
        // Planner never pairs other combinations; make them unattractive
        // rather than unrepresentable so the force hook stays simple.
        _ => f64::INFINITY,
    }
}

/// Validates `q` against the source at plan time, so every operator
/// fails identically on invalid input. Only `MINE COND` conditions are
/// checked: naming an item the ranking has never seen is a user error
/// (`SUPPORT OF` an unknown item legitimately answers 0, and filter
/// items that never match simply select nothing).
fn validate(q: &Query, src: &dyn Source) -> Result<()> {
    if let Query::MineCond { cond, .. } = q {
        let plt = src.plt();
        for &item in cond {
            if plt.ranking().rank(item).is_none() {
                return Err(PltError::Query {
                    message: format!("unknown item {item} in MINE COND (infrequent or never seen)"),
                });
            }
        }
    }
    Ok(())
}

/// Plans `q` (already normalized) against `src`. With `force`, the
/// given operator is used if applicable (the test-only override hook);
/// otherwise the cheapest candidate wins, ties going to the earlier
/// (more specialized) one.
pub fn plan(q: &Query, src: &dyn Source, force: Option<PhysOp>) -> Result<Plan> {
    validate(q, src)?;
    let candidates = applicable_ops(q);
    if let Some(op) = force {
        if !candidates.contains(&op) {
            return Err(PltError::Query {
                message: format!("operator {} does not apply to `{q}`", op.as_str()),
            });
        }
        return Ok(Plan {
            op,
            cost: cost_of(op, q, src),
        });
    }
    let mut best: Option<Plan> = None;
    for &op in candidates {
        let cost = cost_of(op, q, src);
        // Strict `<`: ties go to the earlier (more specialized) candidate.
        let improves = match best {
            Some(b) => cost < b.cost,
            None => true,
        };
        if improves {
            best = Some(Plan { op, cost });
        }
    }
    Ok(best.expect("every query shape has at least FullScan"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Field, Num, Pred};
    use crate::source::tests::mem_source;

    #[test]
    fn planner_prefers_the_specialized_operator() {
        let src = mem_source(2);
        let p = plan(&Query::Support { items: vec![0, 1] }, &src, None).unwrap();
        assert_eq!(p.op, PhysOp::IndexPoint);
        let p = plan(&Query::Top { k: 3, filter: None }, &src, None).unwrap();
        // Tiny source: either way is fine, but the cost must be finite
        // and the op applicable.
        assert!(p.cost.is_finite());
        assert!(applicable_ops(&Query::Top { k: 3, filter: None }).contains(&p.op));
        let p = plan(
            &Query::Rules {
                filter: Some(Pred::Cmp {
                    field: Field::Confidence,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.9),
                }),
                k: None,
            },
            &src,
            None,
        )
        .unwrap();
        assert_eq!(p.op, PhysOp::RuleScan);
    }

    #[test]
    fn confidence_bound_discounts_rule_scan() {
        let src = mem_source(2);
        let bounded = plan(
            &Query::Rules {
                filter: Some(Pred::Cmp {
                    field: Field::Confidence,
                    op: CmpOp::Ge,
                    value: Num::Frac(0.9),
                }),
                k: None,
            },
            &src,
            None,
        )
        .unwrap();
        let unbounded = plan(
            &Query::Rules {
                filter: None,
                k: None,
            },
            &src,
            None,
        )
        .unwrap();
        assert!(bounded.cost < unbounded.cost);
    }

    #[test]
    fn force_hook_respects_applicability() {
        let src = mem_source(2);
        let q = Query::MineCond {
            cond: vec![0],
            k: Some(5),
        };
        for op in [PhysOp::ExtTraverse, PhysOp::CondMine, PhysOp::FullScan] {
            assert_eq!(plan(&q, &src, Some(op)).unwrap().op, op);
        }
        let err = plan(&q, &src, Some(PhysOp::RuleScan)).unwrap_err();
        assert!(err.to_string().contains("does not apply"));
    }

    #[test]
    fn unknown_cond_item_is_rejected_at_plan_time() {
        let src = mem_source(2);
        let q = Query::MineCond {
            cond: vec![99],
            k: None,
        };
        for force in [None, Some(PhysOp::ExtTraverse), Some(PhysOp::CondMine)] {
            let err = plan(&q, &src, force).unwrap_err();
            assert!(err.to_string().contains("unknown item 99"), "{err}");
        }
    }
}
