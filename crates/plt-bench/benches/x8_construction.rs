//! X8 — construction cost of each structure on the same database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_baselines::fpgrowth::build_fp_tree;
use plt_bench::datasets;
use plt_core::construct::{construct, ConstructOptions};
use plt_data::vertical::VerticalDb;
use plt_data::TransactionDb;
use plt_parallel::par_construct;

fn bench(c: &mut Criterion) {
    let n = 5_000usize;
    let db = datasets::sparse(n);
    let min_sup = ((0.01 * n as f64).ceil() as u64).max(1);
    let tdb = TransactionDb::from_sorted(db.clone());

    let mut group = c.benchmark_group("x8/construction");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("plt-sequential"),
        &db,
        |b, db| b.iter(|| construct(db, min_sup, ConstructOptions::conditional()).unwrap()),
    );
    group.bench_with_input(BenchmarkId::from_parameter("plt-parallel"), &db, |b, db| {
        b.iter(|| par_construct(db, min_sup, ConstructOptions::conditional()).unwrap())
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("plt-with-prefixes"),
        &db,
        |b, db| b.iter(|| construct(db, min_sup, ConstructOptions::top_down()).unwrap()),
    );
    group.bench_with_input(BenchmarkId::from_parameter("fp-tree"), &db, |b, db| {
        b.iter(|| build_fp_tree(db, min_sup))
    });
    group.bench_with_input(BenchmarkId::from_parameter("vertical"), &tdb, |b, tdb| {
        b.iter(|| VerticalDb::from_horizontal(tdb))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
