//! Wire protocol: length-prefixed JSON frames over TCP.
//!
//! One message per frame; a frame is the decimal byte length of the
//! payload, a newline, the JSON payload, and a trailing newline:
//!
//! ```text
//! 23\n{"op":"ping","id":null}\n
//! ```
//!
//! The explicit length lets readers allocate exactly and reject
//! oversized frames before parsing; the newlines keep the stream
//! human-readable under `nc`/`telnet`. Requests are objects with an
//! `"op"` discriminator; responses always carry `"ok"` (and `"error"`
//! when `ok` is false). The full request/response vocabulary is
//! documented in the workspace README's *Serving* section.

use std::io::{BufRead, Write};

use plt_core::item::Item;

use crate::fault::{FaultPlan, FrameFault, Site};
use crate::json::Json;

/// Frames larger than this are rejected before allocation. Generous for
/// protocol traffic (an ingest batch of thousands of transactions fits).
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Highest response-envelope version this server speaks. Version 1 is
/// the original flat object (`{"ok":true, ...fields}`); version 2 wraps
/// the same fields in the structured envelope
/// `{"v":2,"status","stale","approx","error_bound","generation","data"}`.
pub const MAX_PROTOCOL_VERSION: u64 = 2;

/// Clamps a client's requested envelope version to what we speak.
/// Unknown future versions negotiate down to the newest we have;
/// anything at or below 1 stays on the v1 flat envelope.
pub fn negotiate_version(requested: u64) -> u64 {
    requested.clamp(1, MAX_PROTOCOL_VERSION)
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Exact support of an itemset.
    Support { items: Vec<Item> },
    /// The `k` highest-support itemsets with at least `min_size` items.
    TopK { k: usize, min_size: usize },
    /// Frequent one-item extensions of a basket.
    Extensions { items: Vec<Item>, k: usize },
    /// Rule-backed recommendations for a basket.
    Recommend { items: Vec<Item>, k: usize },
    /// A query-language expression (see `plt-query`), planned and
    /// executed with plan provenance in the response.
    Query { expr: String },
    /// Service metrics.
    Stats,
    /// Append transactions to the stream behind the snapshot builder.
    /// With `wait`, the response is delayed until the resulting
    /// snapshot is published (and reports its generation).
    Ingest {
        transactions: Vec<Vec<Item>>,
        wait: bool,
    },
    /// Envelope-version negotiation. The connection answers in the
    /// negotiated envelope from this response onward; connections that
    /// never send `hello` stay on v1.
    Hello { version: u64 },
    /// Liveness probe; echoes the current generation.
    Ping,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Parses a request object. Unknown or malformed requests yield a
    /// human-readable error string (sent back as a protocol error).
    pub fn from_json(v: &Json) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        let items = |field: &str| -> Result<Vec<Item>, String> {
            match v.get(field) {
                None => Ok(Vec::new()),
                Some(arr) => arr
                    .as_items()
                    .ok_or(format!("\"{field}\" must be an array of item ids")),
            }
        };
        let k = |default: usize| -> Result<usize, String> {
            match v.get("k") {
                None => Ok(default),
                Some(n) => n
                    .as_u64()
                    .map(|n| n as usize)
                    .ok_or("\"k\" must be a non-negative integer".to_string()),
            }
        };
        match op {
            "support" => Ok(Request::Support {
                items: items("items")?,
            }),
            "top_k" => {
                let min_size = match v.get("min_size") {
                    None => 1,
                    Some(n) => n
                        .as_u64()
                        .map(|n| n as usize)
                        .ok_or("\"min_size\" must be a non-negative integer")?,
                };
                Ok(Request::TopK {
                    k: k(10)?,
                    min_size,
                })
            }
            "extensions" => Ok(Request::Extensions {
                items: items("items")?,
                k: k(10)?,
            }),
            "recommend" => Ok(Request::Recommend {
                items: items("items")?,
                k: k(5)?,
            }),
            "query" => {
                let expr = v
                    .get("expr")
                    .and_then(Json::as_str)
                    .ok_or("\"expr\" must be a string")?;
                Ok(Request::Query {
                    expr: expr.to_string(),
                })
            }
            "stats" => Ok(Request::Stats),
            "ingest" => {
                let arr = v
                    .get("transactions")
                    .and_then(Json::as_arr)
                    .ok_or("\"transactions\" must be an array of arrays")?;
                let mut transactions = Vec::with_capacity(arr.len());
                for t in arr {
                    transactions.push(
                        t.as_items()
                            .ok_or("each transaction must be an array of item ids")?,
                    );
                }
                let wait = match v.get("wait") {
                    None => false,
                    Some(b) => b.as_bool().ok_or("\"wait\" must be a boolean")?,
                };
                Ok(Request::Ingest { transactions, wait })
            }
            "hello" => {
                let version = match v.get("version") {
                    None => 1,
                    Some(n) => n
                        .as_u64()
                        .ok_or("\"version\" must be a non-negative integer")?,
                };
                Ok(Request::Hello { version })
            }
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// Renders the request as a protocol object (client side).
    pub fn to_json(&self) -> Json {
        let items_json =
            |items: &[Item]| Json::Arr(items.iter().map(|&i| Json::from(i as u64)).collect());
        match self {
            Request::Support { items } => Json::obj(vec![
                ("op", Json::str("support")),
                ("items", items_json(items)),
            ]),
            Request::TopK { k, min_size } => Json::obj(vec![
                ("op", Json::str("top_k")),
                ("k", Json::from(*k as u64)),
                ("min_size", Json::from(*min_size as u64)),
            ]),
            Request::Extensions { items, k } => Json::obj(vec![
                ("op", Json::str("extensions")),
                ("items", items_json(items)),
                ("k", Json::from(*k as u64)),
            ]),
            Request::Recommend { items, k } => Json::obj(vec![
                ("op", Json::str("recommend")),
                ("items", items_json(items)),
                ("k", Json::from(*k as u64)),
            ]),
            Request::Query { expr } => Json::obj(vec![
                ("op", Json::str("query")),
                ("expr", Json::Str(expr.clone())),
            ]),
            Request::Stats => Json::obj(vec![("op", Json::str("stats"))]),
            Request::Ingest { transactions, wait } => Json::obj(vec![
                ("op", Json::str("ingest")),
                (
                    "transactions",
                    Json::Arr(transactions.iter().map(|t| items_json(t)).collect()),
                ),
                ("wait", Json::Bool(*wait)),
            ]),
            Request::Hello { version } => Json::obj(vec![
                ("op", Json::str("hello")),
                ("version", Json::from(*version)),
            ]),
            Request::Ping => Json::obj(vec![("op", Json::str("ping"))]),
            Request::Shutdown => Json::obj(vec![("op", Json::str("shutdown"))]),
        }
    }

    /// The canonical cache key: the compact rendering of the request.
    /// Deterministic because `to_json` emits fields in a fixed order.
    pub fn cache_key(&self) -> String {
        self.to_json().to_string()
    }
}

/// Builds a success response envelope around payload fields.
pub fn ok_response(mut fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut fields);
    Json::obj(pairs)
}

/// Builds an error response.
pub fn err_response(message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.into())),
    ])
}

/// Lifts a flat v1 response into the v2 envelope. The serving-state
/// fields (`stale`, `approx`, `error_bound`, `generation`) are hoisted
/// to the envelope with defaults for responses that never set them;
/// every other payload field lands under `data` unchanged.
pub fn to_v2(v1: &Json) -> Json {
    let pairs = match v1 {
        Json::Obj(pairs) => pairs.as_slice(),
        _ => &[],
    };
    let ok = v1.get("ok").and_then(Json::as_bool).unwrap_or(false);
    let mut stale = Json::Bool(false);
    let mut approx = Json::Bool(false);
    let mut error_bound = Json::Null;
    let mut generation = Json::Null;
    let mut data = Vec::new();
    for (key, value) in pairs {
        match key.as_str() {
            "ok" => {}
            "stale" => stale = value.clone(),
            "approx" => approx = value.clone(),
            "error_bound" => error_bound = value.clone(),
            "generation" => generation = value.clone(),
            _ => data.push((key.clone(), value.clone())),
        }
    }
    Json::obj(vec![
        ("v", Json::from(2u64)),
        ("status", Json::str(if ok { "ok" } else { "error" })),
        ("stale", stale),
        ("approx", approx),
        ("error_bound", error_bound),
        ("generation", generation),
        ("data", Json::Obj(data)),
    ])
}

/// Flattens a v2 envelope back to the v1 shape (client side). Returns
/// `None` when the value is not a v2 envelope.
pub fn flatten_v2(v: &Json) -> Option<Json> {
    if v.get("v").and_then(Json::as_u64) != Some(2) {
        return None;
    }
    let status = v.get("status").and_then(Json::as_str)?;
    let mut pairs = vec![("ok".to_string(), Json::Bool(status == "ok"))];
    if let Some(Json::Obj(data)) = v.get("data") {
        pairs.extend(data.iter().cloned());
    }
    for key in ["stale", "approx", "error_bound", "generation"] {
        match v.get(key) {
            None | Some(Json::Null) => {}
            Some(value) => pairs.push((key.to_string(), value.clone())),
        }
    }
    Some(Json::Obj(pairs))
}

/// Renders a v1-shaped response in the connection's negotiated envelope.
pub fn render_response(v1: &Json, version: u64) -> String {
    if version >= 2 {
        to_v2(v1).to_string()
    } else {
        v1.to_string()
    }
}

/// Re-renders an already-serialized v1 payload for the negotiated
/// envelope. The engine (and its response cache) always speaks v1; the
/// dispatch layer wraps at the connection boundary so one cached string
/// serves both versions.
pub fn render_payload(payload: &str, version: u64) -> String {
    if version < 2 {
        return payload.to_string();
    }
    match Json::parse(payload) {
        Ok(v1) => to_v2(&v1).to_string(),
        // Engine payloads are always valid JSON; pass through defensively.
        Err(_) => payload.to_string(),
    }
}

/// Writes one frame: `<len>\n<payload>\n`.
pub fn write_frame(w: &mut impl Write, payload: &str) -> std::io::Result<()> {
    debug_assert!(!payload.contains('\n'), "payloads are single-line JSON");
    write!(w, "{}\n{}\n", payload.len(), payload)?;
    w.flush()
}

/// Writes one frame, consulting a fault plan first. A torn frame sends a
/// deterministic prefix of the encoded bytes then fails; an oversized
/// frame lies in the length header (past [`MAX_FRAME_BYTES`]) then fails.
/// Either way the caller sees an error and must treat the connection as
/// dead — exactly what a real half-written frame implies.
pub fn write_frame_with(
    w: &mut impl Write,
    payload: &str,
    fault: Option<(&FaultPlan, Site)>,
) -> std::io::Result<()> {
    if let Some((plan, site)) = fault {
        let encoded = format!("{}\n{}\n", payload.len(), payload);
        match plan.frame_fault(site, encoded.len()) {
            Some(FrameFault::Torn { keep }) => {
                let keep = keep.min(encoded.len().saturating_sub(1));
                w.write_all(&encoded.as_bytes()[..keep])?;
                w.flush()?;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "fault injection: torn frame",
                ));
            }
            Some(FrameFault::Oversized) => {
                write!(w, "{}\n{}\n", MAX_FRAME_BYTES + 1, payload)?;
                w.flush()?;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionAborted,
                    "fault injection: oversized frame header",
                ));
            }
            None => {}
        }
    }
    write_frame(w, payload)
}

/// Reads one frame; `Ok(None)` on clean EOF before a frame starts.
/// Frames above [`MAX_FRAME_BYTES`] are rejected.
pub fn read_frame(r: &mut impl BufRead) -> std::io::Result<Option<String>> {
    read_frame_limited(r, MAX_FRAME_BYTES)
}

/// Reads one frame with an explicit size limit (the server's configured
/// backpressure bound). The limit is checked before any allocation.
pub fn read_frame_limited(
    r: &mut impl BufRead,
    max_frame: usize,
) -> std::io::Result<Option<String>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let len: usize = header.trim().parse().map_err(|_| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("invalid frame header {header:?}"),
        )
    })?;
    if len > max_frame {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    std::io::Read::read_exact(r, &mut payload)?;
    // Trailing newline.
    let mut nl = [0u8; 1];
    std::io::Read::read_exact(r, &mut nl)?;
    if nl[0] != b'\n' {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame missing trailing newline",
        ));
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "frame is not utf-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"ping"}"#).unwrap();
        write_frame(&mut buf, r#"{"op":"stats"}"#).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(r#"{"op":"ping"}"#)
        );
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(r#"{"op":"stats"}"#)
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn limited_reader_applies_the_given_bound() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"op":"stats"}"#).unwrap();
        let mut r = std::io::Cursor::new(buf.clone());
        let err = read_frame_limited(&mut r, 4).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds limit"), "{err}");
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame_limited(&mut r, 64).unwrap().is_some());
    }

    #[test]
    fn fault_aware_writer_tears_and_oversizes_deterministically() {
        use crate::fault::{FaultConfig, FaultPlan, Site};
        // torn_frame = 1.0: every frame is torn; the bytes on the wire are
        // a strict prefix of the clean encoding and the writer errors.
        let plan = FaultPlan::new(FaultConfig {
            torn_frame: 1.0,
            ..FaultConfig::disabled(5)
        });
        let mut torn = Vec::new();
        let err = write_frame_with(
            &mut torn,
            r#"{"op":"ping"}"#,
            Some((&plan, Site::ServerWrite)),
        )
        .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        let mut clean = Vec::new();
        write_frame(&mut clean, r#"{"op":"ping"}"#).unwrap();
        assert!(!torn.is_empty() && torn.len() < clean.len());
        assert_eq!(&clean[..torn.len()], &torn[..]);

        // oversized_frame = 1.0: the header lies past the limit and the
        // receiving side rejects before allocating.
        let plan = FaultPlan::new(FaultConfig {
            oversized_frame: 1.0,
            ..FaultConfig::disabled(5)
        });
        let mut big = Vec::new();
        assert!(write_frame_with(&mut big, "{}", Some((&plan, Site::ClientWrite))).is_err());
        let mut r = std::io::Cursor::new(big);
        assert!(read_frame(&mut r).is_err());

        // No fault plan: plain write, round-trips.
        let mut ok = Vec::new();
        write_frame_with(&mut ok, r#"{"op":"ping"}"#, None).unwrap();
        let mut r = std::io::Cursor::new(ok);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some(r#"{"op":"ping"}"#)
        );
    }

    #[test]
    fn read_frame_rejects_garbage() {
        let mut r = std::io::Cursor::new(b"notanumber\n{}\n".to_vec());
        assert!(read_frame(&mut r).is_err());
        let huge = format!("{}\n", MAX_FRAME_BYTES + 1);
        let mut r = std::io::Cursor::new(huge.into_bytes());
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn requests_round_trip_through_json() {
        let cases = vec![
            Request::Support {
                items: vec![1, 2, 3],
            },
            Request::TopK { k: 7, min_size: 2 },
            Request::Extensions {
                items: vec![4],
                k: 3,
            },
            Request::Recommend {
                items: vec![],
                k: 5,
            },
            Request::Query {
                expr: "TOP 5 WHERE support >= 0.2".to_string(),
            },
            Request::Stats,
            Request::Ingest {
                transactions: vec![vec![1, 2], vec![3]],
                wait: true,
            },
            Request::Hello { version: 2 },
            Request::Ping,
            Request::Shutdown,
        ];
        for req in cases {
            let json = req.to_json();
            let back = Request::from_json(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
    }

    #[test]
    fn defaults_apply_when_fields_missing() {
        let v = Json::parse(r#"{"op":"top_k"}"#).unwrap();
        assert_eq!(
            Request::from_json(&v).unwrap(),
            Request::TopK { k: 10, min_size: 1 }
        );
        let v = Json::parse(r#"{"op":"recommend","items":[9]}"#).unwrap();
        assert_eq!(
            Request::from_json(&v).unwrap(),
            Request::Recommend {
                items: vec![9],
                k: 5
            }
        );
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let v = Json::parse(r#"{"op":"warp"}"#).unwrap();
        assert!(Request::from_json(&v).unwrap_err().contains("warp"));
        let v = Json::parse(r#"{"items":[1]}"#).unwrap();
        assert!(Request::from_json(&v).unwrap_err().contains("op"));
        let v = Json::parse(r#"{"op":"support","items":[-1]}"#).unwrap();
        assert!(Request::from_json(&v).is_err());
        let v = Json::parse(r#"{"op":"query","expr":7}"#).unwrap();
        assert!(Request::from_json(&v).unwrap_err().contains("expr"));
        let v = Json::parse(r#"{"op":"query"}"#).unwrap();
        assert!(Request::from_json(&v).unwrap_err().contains("expr"));
    }

    #[test]
    fn version_negotiation_clamps_to_what_we_speak() {
        assert_eq!(negotiate_version(0), 1);
        assert_eq!(negotiate_version(1), 1);
        assert_eq!(negotiate_version(2), 2);
        assert_eq!(negotiate_version(99), MAX_PROTOCOL_VERSION);
    }

    #[test]
    fn v2_envelope_hoists_serving_fields_and_nests_the_rest() {
        let v1 = ok_response(vec![
            ("support", Json::from(7u64)),
            ("generation", Json::from(3u64)),
            ("stale", Json::Bool(true)),
        ]);
        let v2 = to_v2(&v1);
        assert_eq!(v2.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(v2.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v2.get("stale").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("approx").and_then(Json::as_bool), Some(false));
        assert_eq!(v2.get("error_bound"), Some(&Json::Null));
        assert_eq!(v2.get("generation").and_then(Json::as_u64), Some(3));
        let data = v2.get("data").expect("data");
        assert_eq!(data.get("support").and_then(Json::as_u64), Some(7));
        assert!(data.get("generation").is_none(), "hoisted, not duplicated");

        let err = to_v2(&err_response("boom"));
        assert_eq!(err.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            err.get("data")
                .and_then(|d| d.get("error"))
                .and_then(Json::as_str),
            Some("boom")
        );
    }

    #[test]
    fn flatten_v2_inverts_the_envelope() {
        let v1 = ok_response(vec![
            ("support", Json::from(7u64)),
            ("approx", Json::Bool(true)),
            ("error_bound", Json::from(12u64)),
            ("generation", Json::from(3u64)),
        ]);
        let flat = flatten_v2(&to_v2(&v1)).expect("v2 envelope");
        assert_eq!(flat.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(flat.get("support").and_then(Json::as_u64), Some(7));
        assert_eq!(flat.get("approx").and_then(Json::as_bool), Some(true));
        assert_eq!(flat.get("error_bound").and_then(Json::as_u64), Some(12));
        assert_eq!(flat.get("generation").and_then(Json::as_u64), Some(3));
        // Not an envelope: a flat v1 object flattens to None.
        assert!(flatten_v2(&v1).is_none());
    }

    #[test]
    fn render_payload_wraps_only_v2_connections() {
        let payload = ok_response(vec![("pong", Json::Bool(true))]).to_string();
        assert_eq!(render_payload(&payload, 1), payload);
        let wrapped = render_payload(&payload, 2);
        let v = Json::parse(&wrapped).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("data")
                .and_then(|d| d.get("pong"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn cache_keys_are_canonical_per_request() {
        let a = Request::Support { items: vec![1, 2] };
        let b = Request::Support { items: vec![1, 2] };
        let c = Request::Support { items: vec![2, 1] };
        assert_eq!(a.cache_key(), b.cache_key());
        // Item order is part of the key; the snapshot canonicalizes, the
        // cache does not need to.
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
