//! Physical (pointer) tree views of the lexicographic structure.
//!
//! The table/matrix representation in [`crate::plt`] is the paper's primary
//! realisation ("we assume that a table-like data structure is used to
//! represent the positional tree; a physical tree may also be assumed").
//! This module provides the physical tree for three uses:
//!
//! * **Figure 1** — the complete lexicographic prefix tree over an item
//!   set: root labelled *null*, each node linked to the items after it in
//!   the order ([`LexTree::complete`]);
//! * **Figure 2** — the same tree annotated with position values
//!   `pos(child) = Rank(child) − Rank(parent)` (every [`Node`] carries its
//!   `pos`);
//! * **Figure 3(b)** — the tree holding only the paths that occur in a
//!   database, with frequencies at path ends ([`LexTree::from_plt`]).

use crate::item::{Rank, Support};
use crate::plt::Plt;
use crate::posvec::PositionVector;

/// A node of the lexicographic tree. The root is a synthetic node with
/// `rank == 0` (the paper's *null* label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Rank of the item this node represents (0 for the root).
    pub rank: Rank,
    /// Position value relative to the parent: `rank − parent.rank`
    /// (Definition 4.1.2). 0 for the root.
    pub pos: Rank,
    /// Frequency of the exact path root→this node as a stored vector
    /// (0 when the path exists only as a prefix of longer vectors).
    pub freq: Support,
    /// Children, ordered by increasing rank.
    pub children: Vec<Node>,
}

impl Node {
    fn new(rank: Rank, pos: Rank) -> Node {
        Node {
            rank,
            pos,
            freq: 0,
            children: Vec::new(),
        }
    }

    /// Total number of nodes in this subtree, including `self`.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }

    /// Height of this subtree (a leaf has height 0).
    pub fn height(&self) -> usize {
        self.children
            .iter()
            .map(|c| c.height() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Child representing `rank`, if present.
    pub fn child(&self, rank: Rank) -> Option<&Node> {
        self.children
            .binary_search_by_key(&rank, |c| c.rank)
            .ok()
            .map(|i| &self.children[i])
    }

    fn child_mut_or_insert(&mut self, rank: Rank) -> &mut Node {
        match self.children.binary_search_by_key(&rank, |c| c.rank) {
            Ok(i) => &mut self.children[i],
            Err(i) => {
                self.children.insert(i, Node::new(rank, rank - self.rank));
                &mut self.children[i]
            }
        }
    }
}

/// A lexicographic tree rooted at *null*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexTree {
    /// The synthetic root.
    pub root: Node,
}

impl LexTree {
    /// Builds the **complete** lexicographic tree over ranks `1..=n`
    /// (Figures 1 and 2): every node for rank `r` has children for every
    /// rank in `r+1..=n`. The tree has `2^n` nodes including the root.
    ///
    /// # Panics
    /// Panics for `n > 16` — the complete tree is for illustration, not
    /// mining.
    pub fn complete(n: Rank) -> LexTree {
        assert!(n <= 16, "complete lexicographic tree limited to n <= 16");
        fn expand(node: &mut Node, n: Rank) {
            for r in node.rank + 1..=n {
                let mut child = Node::new(r, r - node.rank);
                expand(&mut child, n);
                node.children.push(child);
            }
        }
        let mut root = Node::new(0, 0);
        expand(&mut root, n);
        LexTree { root }
    }

    /// Builds the tree holding exactly the vectors stored in a PLT
    /// (Figure 3(b)). Each stored vector contributes one root-to-node path;
    /// the final node of the path records the vector's frequency.
    pub fn from_plt(plt: &Plt) -> LexTree {
        let mut root = Node::new(0, 0);
        for (v, e) in plt.iter() {
            let mut cur = &mut root;
            for r in v.ranks_iter() {
                cur = cur.child_mut_or_insert(r);
            }
            cur.freq += e.freq;
        }
        LexTree { root }
    }

    /// Total node count including the root.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Tree height (root only → 0).
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Follows a position vector from the root; returns the reached node
    /// if the full path exists. Demonstrates that position values alone
    /// (summed into ranks) navigate the tree — Lemma 4.1.1 in action.
    pub fn descend(&self, vector: &PositionVector) -> Option<&Node> {
        let mut cur = &self.root;
        for r in vector.ranks_iter() {
            cur = cur.child(r)?;
        }
        Some(cur)
    }

    /// The position vector of the path from the root to the node reached by
    /// the rank sequence, reading each node's stored `pos` (Definition
    /// 4.1.3's `V(X_k)`).
    pub fn position_vector_of(&self, ranks: &[Rank]) -> Option<PositionVector> {
        let mut cur = &self.root;
        let mut positions = Vec::with_capacity(ranks.len());
        for &r in ranks {
            cur = cur.child(r)?;
            positions.push(cur.pos);
        }
        PositionVector::from_positions(positions).ok()
    }

    /// ASCII rendering used by the experiments binary: one line per node,
    /// indented by depth, showing `rank(pos)` and frequency when non-zero.
    pub fn render(&self) -> String {
        fn rec(node: &Node, depth: usize, out: &mut String) {
            use std::fmt::Write;
            if node.rank == 0 {
                out.push_str("(null)\n");
            } else {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                write!(out, "{}({})", node.rank, node.pos).unwrap();
                if node.freq > 0 {
                    write!(out, " freq={}", node.freq).unwrap();
                }
                out.push('\n');
            }
            for c in &node.children {
                rec(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        rec(&self.root, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct, ConstructOptions};
    use crate::item::Item;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn figure1_complete_tree_over_four_items() {
        // The lexicographic tree over {A,B,C,D} has 2^4 = 16 nodes
        // including the null root (15 itemset nodes).
        let t = LexTree::complete(4);
        assert_eq!(t.size(), 16);
        assert_eq!(t.height(), 4);
        // Root links to all four items.
        assert_eq!(t.root.children.len(), 4);
        // Node A (rank 1) links to B, C, D.
        let a = t.root.child(1).unwrap();
        assert_eq!(a.children.len(), 3);
        // The paper's example: C as a child of A sits at position 2.
        assert_eq!(a.child(3).unwrap().pos, 2);
    }

    #[test]
    fn figure2_positions_are_rank_deltas() {
        let t = LexTree::complete(4);
        fn check(node: &Node) {
            for c in &node.children {
                assert_eq!(c.pos, c.rank - node.rank);
                check(c);
            }
        }
        check(&t.root);
        // Spot checks matching Figure 2: root's children carry their ranks.
        for (i, c) in t.root.children.iter().enumerate() {
            assert_eq!(c.pos, (i + 1) as Rank);
        }
    }

    #[test]
    fn figure3b_tree_from_table1() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let t = LexTree::from_plt(&plt);
        // Paths: 1-2-3 (freq 2), 1-2-3-4 (1), 1-2-4 (1), 2-3-4 (1),
        // 3-4 (1). Distinct nodes: root,1,12,123,1234,124,2,23,234,3,34 = 11.
        assert_eq!(t.size(), 11);
        let v = PositionVector::from_positions(vec![1, 1, 1]).unwrap();
        assert_eq!(t.descend(&v).unwrap().freq, 2);
        let v4 = PositionVector::from_positions(vec![1, 1, 1, 1]).unwrap();
        assert_eq!(t.descend(&v4).unwrap().freq, 1);
        // Interior node {A} has no own frequency.
        let va = PositionVector::from_positions(vec![1]).unwrap();
        assert_eq!(t.descend(&va).unwrap().freq, 0);
        // Missing path.
        let missing = PositionVector::from_positions(vec![4]).unwrap();
        assert!(t.descend(&missing).is_none());
    }

    #[test]
    fn position_vector_read_from_tree_matches_encoder() {
        let t = LexTree::complete(6);
        let ranks = vec![2, 3, 6];
        let from_tree = t.position_vector_of(&ranks).unwrap();
        let direct = PositionVector::from_ranks(&ranks).unwrap();
        assert_eq!(from_tree, direct);
        assert!(t.position_vector_of(&[7]).is_none());
    }

    #[test]
    fn complete_tree_sizes_are_powers_of_two() {
        for n in 0..=8u32 {
            assert_eq!(LexTree::complete(n).size(), 1usize << n);
        }
    }

    #[test]
    #[should_panic]
    fn complete_tree_guards_against_blowup() {
        LexTree::complete(17);
    }

    #[test]
    fn render_contains_structure() {
        let plt = construct(&table1(), 2, ConstructOptions::conditional()).unwrap();
        let t = LexTree::from_plt(&plt);
        let s = t.render();
        assert!(s.starts_with("(null)\n"));
        assert!(s.contains("freq=2"));
        assert!(s.contains("3(1)")); // rank 3 at pos 1 under rank 2
    }
}
