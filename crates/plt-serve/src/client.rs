//! Blocking client for the framed protocol — used by the CLI's `query`
//! subcommand and the end-to-end tests.
//!
//! The client is resilient by default: transport failures on idempotent
//! requests (every read endpoint plus `ping`/`stats`) are retried on a
//! fresh connection with capped exponential backoff and deterministic
//! jitter. Non-idempotent requests (`ingest`, `shutdown`) and raw
//! payloads are never retried — a retry there could double-apply a
//! batch. A [`FaultPlan`] in the config injects client-side faults for
//! chaos testing.

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use plt_core::item::{Item, Support};

use crate::fault::{FaultPlan, FaultyStream, Site};
use crate::json::Json;
use crate::proto::{flatten_v2, negotiate_version, read_frame, write_frame_with, Request};

/// Retry policy for idempotent requests.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 = no retry).
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter sequence.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(200),
            jitter_seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }
}

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Socket read deadline (`None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Socket write deadline.
    pub write_timeout: Option<Duration>,
    pub retry: RetryPolicy,
    /// Response-envelope version to negotiate. `1` (default) keeps the
    /// original flat responses and sends no `hello`; `2` negotiates the
    /// structured envelope on every dial and transparently flattens
    /// responses, so the typed helpers work identically under both.
    pub protocol_version: u64,
    /// Deterministic fault injection on the client's own I/O. `None` in
    /// production.
    pub fault: Option<std::sync::Arc<FaultPlan>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
            protocol_version: 1,
            fault: None,
        }
    }
}

/// One logical connection to a plt-serve server. Requests are sent one
/// at a time (the protocol is strictly request/response per frame); the
/// underlying TCP connection is re-dialed transparently when a retryable
/// request hits a transport error.
pub struct Client {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    conn: Option<Conn>,
    /// xorshift64 state for backoff jitter.
    rng: u64,
}

struct Conn {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: BufWriter<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addrs", &self.addrs)
            .field("connected", &self.conn.is_some())
            .finish_non_exhaustive()
    }
}

/// A client-side failure: transport, framing, or a server-reported
/// protocol error.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// Response was not valid JSON or missing required fields.
    Malformed(String),
    /// Server answered `{"ok":false,...}`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A support answer as reported over the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportReply {
    pub support: Support,
    pub frequent: bool,
    /// `"index"` or `"oracle"`.
    pub source: String,
    pub generation: u64,
    /// True when the server is degraded to a snapshot older than the
    /// data it has accepted (the last rebuild failed).
    pub stale: bool,
}

/// Only idempotent requests may be transparently retried: re-sending an
/// `ingest` could double-apply the batch, and `shutdown` acks race the
/// server exiting.
fn is_idempotent(request: &Request) -> bool {
    !matches!(request, Request::Ingest { .. } | Request::Shutdown)
}

/// A load-shed refusal (`shed: ...` error frame from admission control)
/// is an explicit "try again later", not a protocol error — idempotent
/// requests back off and retry through it.
fn is_shed(error: &ClientError) -> bool {
    matches!(error, ClientError::Server(m) if m.starts_with("shed:"))
}

impl Client {
    /// Connects with the default config (10s deadlines, 3 retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::with_config(addr, ClientConfig::default())
    }

    /// Connects with explicit knobs. Dials eagerly so misconfiguration
    /// fails here, not on the first request.
    pub fn with_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )));
        }
        let mut seed = config.retry.jitter_seed;
        if seed == 0 {
            seed = 0x9e3779b97f4a7c15;
        }
        let mut client = Client {
            addrs,
            config,
            conn: None,
            rng: seed,
        };
        client.conn = Some(client.dial()?);
        Ok(client)
    }

    /// The envelope version this client expects on the wire.
    fn version(&self) -> u64 {
        negotiate_version(self.config.protocol_version)
    }

    fn dial(&self) -> Result<Conn, ClientError> {
        let stream = TcpStream::connect(&self.addrs[..])?;
        stream.set_read_timeout(self.config.read_timeout)?;
        stream.set_write_timeout(self.config.write_timeout)?;
        let read_stream = stream.try_clone()?;
        let (read_half, write_half): (Box<dyn Read + Send>, Box<dyn Write + Send>) =
            match &self.config.fault {
                Some(plan) => (
                    Box::new(FaultyStream::new(
                        read_stream,
                        plan.clone(),
                        Site::ClientRead,
                    )),
                    Box::new(FaultyStream::new(stream, plan.clone(), Site::ClientWrite)),
                ),
                None => (Box::new(read_stream), Box::new(stream)),
            };
        let mut conn = Conn {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(write_half),
        };
        // Negotiate the envelope before the first real request; v1
        // connections stay silent (the server defaults every connection
        // to v1, so there is nothing to say).
        if self.version() >= 2 {
            let hello = Request::Hello {
                version: self.config.protocol_version,
            }
            .to_json()
            .to_string();
            let frame_fault = self
                .config
                .fault
                .as_deref()
                .map(|plan| (plan, Site::ClientWrite));
            write_frame_with(&mut conn.writer, &hello, frame_fault)?;
            let reply = read_frame(&mut conn.reader)?.ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed during hello",
                ))
            })?;
            let v = decode_reply(&reply, self.version())?;
            let negotiated = v.get("version").and_then(Json::as_u64).unwrap_or(1);
            if negotiated != self.version() {
                return Err(ClientError::Malformed(format!(
                    "server negotiated unsupported envelope v{negotiated}"
                )));
            }
        }
        Ok(conn)
    }

    /// Deterministic equal-jitter backoff: `cap(base·2ⁿ)/2` plus a
    /// jittered half, so synchronized clients spread out.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.retry.base_backoff.as_millis().max(1) as u64;
        let cap = self.config.retry.max_backoff.as_millis().max(1) as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        // xorshift64 — deterministic per client, seeded by the policy.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        Duration::from_millis(exp / 2 + self.rng % (exp / 2 + 1))
    }

    /// Sends one request and reads the matching response, re-dialing and
    /// retrying idempotent requests on transport errors. Protocol errors
    /// (`ok: false`) surface as [`ClientError::Server`] and are never
    /// retried.
    pub fn request(&mut self, request: &Request) -> Result<Json, ClientError> {
        let payload = request.to_json().to_string();
        let retriable = is_idempotent(request);
        let mut attempt = 0u32;
        loop {
            match self.request_once(&payload) {
                Err(ClientError::Io(_)) if retriable && attempt < self.config.retry.max_retries => {
                    let delay = self.backoff(attempt);
                    attempt += 1;
                    std::thread::sleep(delay);
                }
                Err(e) if is_shed(&e) && retriable && attempt < self.config.retry.max_retries => {
                    // The server refused us at admission; it closes the
                    // connection after the shed frame, so re-dial after
                    // backing off.
                    self.conn = None;
                    let delay = self.backoff(attempt);
                    attempt += 1;
                    std::thread::sleep(delay);
                }
                other => return other,
            }
        }
    }

    /// Sends a raw JSON payload (already rendered); used by the CLI to
    /// pass user-authored requests through unchanged. Never retried —
    /// the payload's idempotency is unknown.
    pub fn request_raw(&mut self, payload: &str) -> Result<Json, ClientError> {
        self.request_once(payload)
    }

    /// One attempt on the current (or a fresh) connection. Any transport
    /// failure poisons the connection so the next attempt re-dials.
    fn request_once(&mut self, payload: &str) -> Result<Json, ClientError> {
        let fault = self.config.fault.clone();
        let frame_fault = fault.as_deref().map(|plan| (plan, Site::ClientWrite));
        let version = self.version();
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        let conn = self.conn.as_mut().unwrap();
        let result = (|| -> Result<Json, ClientError> {
            write_frame_with(&mut conn.writer, payload, frame_fault)?;
            let reply = read_frame(&mut conn.reader)?.ok_or_else(|| {
                // Mid-request EOF is a transport failure (server died or
                // dropped us), not a malformed response — retriable.
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            })?;
            decode_reply(&reply, version)
        })();
        if matches!(result, Err(ClientError::Io(_))) {
            self.conn = None;
        }
        result
    }

    /// Sends `requests` down one connection with up to `window` of them
    /// in flight, reading responses in order as slots free up — the
    /// protocol is strict FIFO per connection, so responses pair with
    /// requests positionally.
    ///
    /// Pipelining amortizes round trips: with `window = 1` this is the
    /// sequential path; with a deeper window a batch of point queries
    /// costs roughly one round trip per window, not per request. The
    /// reactor server decodes the whole burst and answers in order; the
    /// thread server reads frames back-to-back off its buffered socket.
    ///
    /// Per-request server errors (`ok: false`) land in the inner
    /// `Result` — a batch is not aborted by one bad request. Transport
    /// and framing failures abort the whole call (the outer `Err`),
    /// poisoning the connection; nothing is retried, because a batch's
    /// idempotency is the caller's call.
    pub fn pipeline(
        &mut self,
        requests: &[Request],
        window: usize,
    ) -> Result<Vec<Result<Json, String>>, ClientError> {
        let window = window.max(1);
        let payloads: Vec<String> = requests.iter().map(|r| r.to_json().to_string()).collect();
        let fault = self.config.fault.clone();
        let frame_fault = fault.as_deref().map(|plan| (plan, Site::ClientWrite));
        let version = self.version();
        if self.conn.is_none() {
            self.conn = Some(self.dial()?);
        }
        let conn = self.conn.as_mut().unwrap();
        let result = (|| -> Result<Vec<Result<Json, String>>, ClientError> {
            let mut replies = Vec::with_capacity(payloads.len());
            let mut sent = 0usize;
            let mut received = 0usize;
            while received < payloads.len() {
                // Fill the window, then flush the burst as one write.
                let burst_end = payloads.len().min(received + window);
                while sent < burst_end {
                    write_frame_with(&mut conn.writer, &payloads[sent], frame_fault)?;
                    sent += 1;
                }
                let reply = read_frame(&mut conn.reader)?.ok_or_else(|| {
                    ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed mid-pipeline",
                    ))
                })?;
                received += 1;
                match decode_reply(&reply, version) {
                    Ok(v) => replies.push(Ok(v)),
                    // A per-request server error does not abort the batch.
                    Err(ClientError::Server(m)) => replies.push(Err(m)),
                    Err(e) => return Err(e),
                }
            }
            Ok(replies)
        })();
        if matches!(result, Err(ClientError::Io(_))) {
            self.conn = None;
        }
        result
    }

    /// `support` endpoint.
    pub fn support(&mut self, items: &[Item]) -> Result<SupportReply, ClientError> {
        let v = self.request(&Request::Support {
            items: items.to_vec(),
        })?;
        Ok(SupportReply {
            support: field_u64(&v, "support")?,
            frequent: v
                .get("frequent")
                .and_then(Json::as_bool)
                .ok_or_else(|| ClientError::Malformed("missing \"frequent\"".into()))?,
            source: v
                .get("source")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            generation: field_u64(&v, "generation")?,
            stale: v.get("stale").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// `top_k` endpoint: `(items, support)` rows.
    pub fn top_k(
        &mut self,
        k: usize,
        min_size: usize,
    ) -> Result<Vec<(Vec<Item>, Support)>, ClientError> {
        let v = self.request(&Request::TopK { k, min_size })?;
        let rows = v
            .get("itemsets")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("missing \"itemsets\"".into()))?;
        rows.iter()
            .map(|row| {
                let items = row
                    .get("items")
                    .and_then(Json::as_items)
                    .ok_or_else(|| ClientError::Malformed("row missing \"items\"".into()))?;
                Ok((items, field_u64(row, "support")?))
            })
            .collect()
    }

    /// `extensions` endpoint: `(item, support)` rows.
    pub fn extensions(
        &mut self,
        items: &[Item],
        k: usize,
    ) -> Result<Vec<(Item, Support)>, ClientError> {
        let v = self.request(&Request::Extensions {
            items: items.to_vec(),
            k,
        })?;
        let rows = v
            .get("extensions")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("missing \"extensions\"".into()))?;
        rows.iter()
            .map(|row| Ok((field_u64(row, "item")? as Item, field_u64(row, "support")?)))
            .collect()
    }

    /// `recommend` endpoint: `(item, confidence)` rows (full detail is
    /// available via [`request`](Self::request)).
    pub fn recommend(&mut self, items: &[Item], k: usize) -> Result<Vec<(Item, f64)>, ClientError> {
        let v = self.request(&Request::Recommend {
            items: items.to_vec(),
            k,
        })?;
        let rows = v
            .get("recommendations")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Malformed("missing \"recommendations\"".into()))?;
        rows.iter()
            .map(|row| {
                let item = field_u64(row, "item")? as Item;
                let confidence = row
                    .get("confidence")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ClientError::Malformed("row missing \"confidence\"".into()))?;
                Ok((item, confidence))
            })
            .collect()
    }

    /// `stats` endpoint, returned as raw JSON (shape documented in the
    /// README).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request(&Request::Stats)
    }

    /// `query` endpoint: one query-language expression, answered with
    /// rows plus plan provenance (`rows`, `row_kind`, `plan`, `cost`,
    /// `cache_hit`). Returned as raw JSON — the row shape depends on the
    /// query kind.
    pub fn query(&mut self, expr: &str) -> Result<Json, ClientError> {
        self.request(&Request::Query {
            expr: expr.to_string(),
        })
    }

    /// `ingest` endpoint; with `wait`, returns the published generation.
    pub fn ingest(
        &mut self,
        transactions: Vec<Vec<Item>>,
        wait: bool,
    ) -> Result<Option<u64>, ClientError> {
        let v = self.request(&Request::Ingest { transactions, wait })?;
        Ok(v.get("generation").and_then(Json::as_u64))
    }

    /// `ping` endpoint; returns the serving generation.
    pub fn ping(&mut self) -> Result<u64, ClientError> {
        let v = self.request(&Request::Ping)?;
        field_u64(&v, "generation")
    }

    /// Asks the server to stop.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

/// Parses one reply in the connection's negotiated envelope and applies
/// the `ok`/`error` convention. v2 envelopes are flattened back to the
/// v1 shape first, so every typed helper reads one format. A v1-shaped
/// frame on a v2 connection is tolerated when it carries `ok` — the
/// server sheds at admission *before* negotiation, and those refusals
/// must stay recognizable (`is_shed`) to the retry loop.
fn decode_reply(reply: &str, version: u64) -> Result<Json, ClientError> {
    let v = Json::parse(reply).map_err(|e| ClientError::Malformed(e.to_string()))?;
    let v = if version >= 2 {
        match flatten_v2(&v) {
            Some(flat) => flat,
            None if v.get("ok").is_some() => v,
            None => {
                return Err(ClientError::Malformed(
                    "expected a v2 response envelope".into(),
                ))
            }
        }
    } else {
        v
    };
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(v),
        Some(false) => Err(ClientError::Server(
            v.get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
        )),
        None => Err(ClientError::Malformed("response missing \"ok\"".into())),
    }
}

fn field_u64(v: &Json, name: &str) -> Result<u64, ClientError> {
    v.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Malformed(format!("missing numeric \"{name}\"")))
}
