//! Cross-crate agreement: every miner in the workspace produces the exact
//! same frequent-itemset family (itemsets *and* supports) on realistic
//! generated workloads — PLT (both approaches, sequential and parallel)
//! against every baseline.

use std::collections::BTreeSet;

use plt::baselines::apriori::{AprioriMiner, CountingStrategy, PruneStrategy};
use plt::baselines::{
    AisMiner, DicMiner, EclatMiner, FpGrowthMiner, HMineMiner, PartitionMiner, SamplingMiner,
};
use plt::core::miner::Miner;
use plt::core::HybridMiner;
use plt::data::{
    BasketConfig, BasketGenerator, DenseConfig, DenseGenerator, QuestConfig, QuestGenerator,
};
use plt::parallel::{ParallelEclatMiner, ParallelPltMiner};
use plt::{CondEngine, ConditionalMiner, RankPolicy, TopDownMiner};
use proptest::prelude::*;

mod common;
use common::{diff_support_maps, support_map};

fn all_miners() -> Vec<Box<dyn Miner>> {
    vec![
        Box::new(ConditionalMiner::default()),
        Box::new(ConditionalMiner::with_policy(
            RankPolicy::FrequencyDescending,
        )),
        Box::new(TopDownMiner::default()),
        Box::new(HybridMiner::default()),
        Box::new(HybridMiner {
            topdown_budget: 64,
            ..Default::default()
        }),
        Box::new(ParallelPltMiner::default()),
        Box::new(AprioriMiner::default()),
        Box::new(AprioriMiner {
            prune: PruneStrategy::PltSubsetChecker,
            counting: CountingStrategy::SubsetEnumeration,
        }),
        Box::new(FpGrowthMiner),
        Box::new(EclatMiner::default()),
        Box::new(EclatMiner::with_diffsets()),
        Box::new(HMineMiner),
        Box::new(ParallelEclatMiner),
        Box::new(AisMiner),
        Box::new(PartitionMiner::default()),
        Box::new(PartitionMiner { num_partitions: 7 }),
        Box::new(DicMiner::default()),
        Box::new(DicMiner { block_size: 37 }),
        Box::new(SamplingMiner::default()),
    ]
}

fn assert_all_agree(db: &[Vec<u32>], min_support: u64, label: &str) {
    let reference = ConditionalMiner::default().mine(db, min_support);
    reference
        .check_anti_monotone()
        .unwrap_or_else(|e| panic!("{label}: {e}"));
    let expect = reference.sorted();
    for miner in all_miners() {
        let got = miner.mine(db, min_support).sorted();
        assert_eq!(
            got.len(),
            expect.len(),
            "{label}: {} found {} itemsets, expected {}",
            miner.name(),
            got.len(),
            expect.len()
        );
        assert_eq!(got, expect, "{label}: {} disagrees", miner.name());
    }
}

#[test]
fn agree_on_sparse_quest_data() {
    let db = QuestGenerator::new(QuestConfig::t5i2(800))
        .generate()
        .into_transactions();
    assert_all_agree(&db, 8, "quest t5i2 1%");
    assert_all_agree(&db, 40, "quest t5i2 5%");
}

#[test]
fn agree_on_dense_data() {
    let db = DenseGenerator::new(DenseConfig {
        num_transactions: 400,
        num_items: 12,
        density_hi: 0.85,
        density_lo: 0.2,
        seed: 99,
    })
    .generate()
    .into_transactions();
    assert_all_agree(&db, 200, "dense 50%");
    assert_all_agree(&db, 80, "dense 20%");
}

#[test]
fn agree_on_market_baskets() {
    let db = BasketGenerator::new(BasketConfig {
        num_baskets: 600,
        ..Default::default()
    })
    .generate()
    .into_transactions();
    assert_all_agree(&db, 30, "baskets 5%");
}

#[test]
fn agree_when_nothing_is_frequent() {
    let db = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
    for miner in all_miners() {
        assert!(miner.mine(&db, 2).is_empty(), "{}", miner.name());
    }
}

#[test]
fn agree_with_empty_transactions_interleaved() {
    // Real exports contain empty rows; every miner must skip them without
    // skewing counts.
    let db = vec![
        vec![1, 2, 3],
        vec![],
        vec![1, 2],
        vec![],
        vec![2, 3],
        vec![1, 2, 3],
    ];
    assert_all_agree(&db, 2, "empty rows");
    let r = ConditionalMiner::default().mine(&db, 2);
    assert_eq!(r.support(&[1, 2]), Some(3));
    assert_eq!(r.num_transactions(), 6); // empties still counted as rows
}

#[test]
fn agree_under_every_rank_policy_end_to_end() {
    let db = BasketGenerator::new(BasketConfig {
        num_baskets: 300,
        ..Default::default()
    })
    .generate()
    .into_transactions();
    let reference = ConditionalMiner::default().mine(&db, 15).sorted();
    for policy in [
        RankPolicy::Lexicographic,
        RankPolicy::FrequencyAscending,
        RankPolicy::FrequencyDescending,
    ] {
        let miners: Vec<Box<dyn Miner>> = vec![
            Box::new(ConditionalMiner::with_policy(policy)),
            Box::new(TopDownMiner::with_policy(policy)),
            Box::new(HybridMiner {
                rank_policy: policy,
                ..Default::default()
            }),
            Box::new(ParallelPltMiner::with_policy(policy)),
        ];
        for miner in miners {
            assert_eq!(
                miner.mine(&db, 15).sorted(),
                reference,
                "{} under {policy:?}",
                miner.name()
            );
        }
    }
}

#[test]
fn agree_on_degenerate_databases() {
    // Single transaction; all-identical transactions; singleton items.
    let cases: Vec<(Vec<Vec<u32>>, u64)> = vec![
        (vec![vec![1, 2, 3]], 1),
        (vec![vec![4, 5]; 10], 10),
        (vec![vec![7], vec![7], vec![8]], 2),
    ];
    for (db, ms) in cases {
        assert_all_agree(&db, ms, "degenerate");
    }
}

// ---------------------------------------------------------------------------
// Differential property harness: on random skewed databases with
// duplicated rows, every engine pair must agree on the *full*
// itemset → support map, across a min_support sweep that always includes
// the extremes 1 (everything non-empty is frequent) and |D| (only
// itemsets present in every transaction survive).
//
// The vendored proptest shim does not shrink, so disagreements are
// reported with the complete database, the support threshold, and a
// per-itemset diff — everything needed to replay the failure by hand.
// ---------------------------------------------------------------------------

/// The engine pairs under differential test: the arena conditional engine
/// against every other implementation family.
fn differential_roster() -> Vec<Box<dyn Miner>> {
    vec![
        Box::new(ConditionalMiner::with_engine(CondEngine::Map)),
        Box::new(TopDownMiner::default()),
        Box::new(FpGrowthMiner),
        Box::new(EclatMiner::default()),
    ]
}

/// Runs every engine pair over one `(db, min_support)` cell; `Err` carries
/// the full failing case.
fn engines_agree(db: &[Vec<u32>], min_support: u64) -> Result<(), String> {
    let arena = ConditionalMiner::default().mine(db, min_support);
    arena
        .check_anti_monotone()
        .map_err(|e| format!("arena family not anti-monotone at min_support {min_support}: {e}"))?;
    let reference = support_map(&arena);
    for miner in differential_roster() {
        let got = support_map(&miner.mine(db, min_support));
        if let Some(diff) = diff_support_maps(&reference, &got) {
            return Err(format!(
                "arena vs {} disagree at min_support {min_support} on db ({} rows):\n\
                 {db:?}\ndiff (reference = arena):\n{diff}",
                miner.name(),
                db.len(),
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Skewed item draws + duplicated rows, swept across min_support
    /// 1, a mid value, and |D|.
    #[test]
    fn prop_engine_pairs_agree_on_full_support_maps(
        raw in proptest::collection::vec(
            proptest::collection::btree_set(0u32..400, 1..7),
            4..24,
        ),
        dup_rows in 0usize..16,
        mid_support in 2u64..7,
    ) {
        // Skew: squaring a uniform draw concentrates mass near item 0,
        // approximating the head-heavy distributions of retail data
        // (duplicates introduced by the mapping collapse within a row).
        let mut db: Vec<Vec<u32>> = raw
            .iter()
            .map(|t| {
                let s: BTreeSet<u32> = t.iter().map(|&x| (x * x) / 400).collect();
                s.into_iter().collect()
            })
            .collect();
        // Duplicate a prefix of rows verbatim: exact repeats must fold
        // into counts, never into extra itemsets.
        let copies = dup_rows % db.len();
        for i in 0..copies {
            let row = db[i].clone();
            db.push(row);
        }
        let n = db.len() as u64;
        for min_support in [1, mid_support.min(n), n] {
            let outcome = engines_agree(&db, min_support);
            prop_assert!(outcome.is_ok(), "{}", outcome.unwrap_err());
        }
    }
}
