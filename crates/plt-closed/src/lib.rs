//! # plt-closed — closed & maximal itemset post-processing
//!
//! Condensed representations of a frequent-itemset family:
//!
//! * an itemset is **closed** if no proper superset has the same support
//!   (dropping non-closed sets loses nothing — their supports are implied);
//! * an itemset is **maximal** if no proper superset is frequent at all
//!   (the smallest family that still determines *which* itemsets are
//!   frequent, though not their supports).
//!
//! The paper's conclusion pitches PLT as "a promising tool for most of the
//! existing data mining approaches"; closed/maximal mining (CLOSET+,
//! MAFIA, …) is the most prominent such family, and this crate provides
//! the standard post-processing formulation: filter a complete
//! [`MiningResult`] by superset inspection, one level up at a time.
//!
//! Both filters run in `O(Σ_k k · |F_k|)` hash probes: an itemset only
//! needs its `(k+1)`-supersets checked, and each `(k+1)`-itemset names its
//! `k+1` subsets directly.

pub mod native;

pub use native::ClosedMiner;

use plt_core::hash::FxHashMap;
use plt_core::item::Itemset;
use plt_core::miner::MiningResult;

/// Keeps the closed itemsets of a (complete) mining result.
pub fn closed_itemsets(result: &MiningResult) -> MiningResult {
    filter_by_supersets(result, |own_support, superset_support| {
        // Closed: keep unless some (k+1)-superset matches our support.
        own_support == superset_support
    })
}

/// Keeps the maximal itemsets of a (complete) mining result.
pub fn maximal_itemsets(result: &MiningResult) -> MiningResult {
    filter_by_supersets(result, |_own, _superset| {
        // Maximal: keep unless any (k+1)-superset is frequent at all.
        true
    })
}

/// Derives the maximal itemsets from a *closed* family (e.g. the output
/// of [`native::ClosedMiner`]), without ever materialising the complete
/// frequent family: a closed itemset is maximal iff no other closed
/// itemset properly contains it (every frequent superset extends to a
/// closed one).
pub fn maximal_from_closed(closed: &MiningResult) -> MiningResult {
    // Group by size; an itemset only needs checking against larger sets.
    let mut by_size: Vec<Vec<&Itemset>> = Vec::new();
    for (itemset, _) in closed.iter() {
        let k = itemset.len();
        if by_size.len() < k {
            by_size.resize_with(k, Vec::new);
        }
        by_size[k - 1].push(itemset);
    }
    let mut out = MiningResult::new(closed.min_support(), closed.num_transactions());
    for (itemset, support) in closed.iter() {
        let dominated = (itemset.len()..by_size.len())
            .any(|k| by_size[k].iter().any(|bigger| itemset.is_subset_of(bigger)));
        if !dominated {
            out.insert(itemset.clone(), support);
        }
    }
    out
}

/// Shared machinery: drop an itemset when some frequent `(k+1)`-superset
/// satisfies `kill(own_support, superset_support)`.
///
/// Checking only one level up suffices for both predicates: frequency and
/// equal-support domination both propagate through a chain of single-item
/// extensions (if a (k+2)-superset kills you, the (k+1)-itemset between
/// you and it does too — supports are monotone along the chain).
fn filter_by_supersets(result: &MiningResult, kill: impl Fn(u64, u64) -> bool) -> MiningResult {
    // Group supports by size for the level-up probes.
    let mut by_size: Vec<Vec<(&Itemset, u64)>> = Vec::new();
    for (itemset, support) in result.iter() {
        let k = itemset.len();
        if by_size.len() < k {
            by_size.resize_with(k, Vec::new);
        }
        by_size[k - 1].push((itemset, support));
    }

    // killed[k-1]: the k-itemsets dominated by some (k+1)-superset.
    let mut out = MiningResult::new(result.min_support(), result.num_transactions());
    for k in 0..by_size.len() {
        let uppers: FxHashMap<&Itemset, u64> = if k + 1 < by_size.len() {
            by_size[k + 1].iter().copied().collect()
        } else {
            FxHashMap::default()
        };
        // Build the kill set for this level by enumerating each upper
        // itemset's immediate subsets.
        let mut killed: FxHashMap<Itemset, ()> = FxHashMap::default();
        for (&upper, upper_support) in uppers.iter() {
            for drop in 0..upper.len() {
                let sub: Vec<_> = upper
                    .items()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop)
                    .map(|(_, &x)| x)
                    .collect();
                let sub = Itemset::from_sorted(sub);
                if let Some(own) = result.support(sub.items()) {
                    if kill(own, *upper_support) {
                        killed.insert(sub, ());
                    }
                }
            }
        }
        for &(itemset, support) in &by_size[k] {
            if !killed.contains_key(itemset) {
                out.insert(itemset.clone(), support);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::item::Item;
    use plt_core::miner::{BruteForceMiner, Miner};
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn closed_sets_of_table1() {
        // Supports: A4 B5 C5 D4 AB4 AC3 AD2 BC4 BD3 CD3 ABC3 ABD2 BCD2.
        // Non-closed: A (=AB), AC (=ABC), AD (=ABD), BC... sup(BC)=4 vs
        // supersets ABC=3, BCD=2 → closed. A: superset AB has 4 → killed.
        let all = BruteForceMiner.mine(&table1(), 2);
        let closed = closed_itemsets(&all);
        assert!(!closed.contains(&[0])); // A absorbed by AB
        assert!(closed.contains(&[0, 1])); // AB closed (ABC=3 < 4)
        assert!(!closed.contains(&[0, 2])); // AC=3 absorbed by ABC=3
        assert!(!closed.contains(&[0, 3])); // AD=2 absorbed by ABD=2
        assert!(closed.contains(&[1])); // B=5, AB=4,BC=4,BD=3 → closed
        assert!(closed.contains(&[2])); // C=5
        assert!(closed.contains(&[1, 3])); // BD=3; supersets ABD=2, BCD=2 differ
    }

    #[test]
    fn bd_is_closed_correction() {
        // Explicit check of the boundary from the previous test: BD=3 has
        // no superset with support 3, so it *is* closed.
        let all = BruteForceMiner.mine(&table1(), 2);
        let closed = closed_itemsets(&all);
        assert!(closed.contains(&[1, 3]));
    }

    #[test]
    fn maximal_sets_of_table1() {
        let all = BruteForceMiner.mine(&table1(), 2);
        let maximal = maximal_itemsets(&all);
        // Frequent 3-itemsets: ABC, ABD, BCD; no frequent 4-itemset, so
        // all three are maximal. CD (sup 3) is contained in BCD → not
        // maximal.
        assert!(maximal.contains(&[0, 1, 2]));
        assert!(maximal.contains(&[0, 1, 3]));
        assert!(maximal.contains(&[1, 2, 3]));
        assert!(!maximal.contains(&[2, 3]));
        assert!(!maximal.contains(&[1]));
        assert_eq!(maximal.len(), 3);
    }

    #[test]
    fn closed_preserves_supports_and_maximal_subset_of_closed() {
        let all = BruteForceMiner.mine(&table1(), 2);
        let closed = closed_itemsets(&all);
        let maximal = maximal_itemsets(&all);
        for (s, sup) in closed.iter() {
            assert_eq!(all.support(s.items()), Some(sup));
        }
        for (s, _) in maximal.iter() {
            assert!(closed.contains(s.items()), "maximal {s} must be closed");
        }
        assert!(maximal.len() <= closed.len());
        assert!(closed.len() <= all.len());
    }

    /// Reference definitions by full pairwise comparison.
    fn reference_closed(all: &MiningResult) -> Vec<Itemset> {
        all.iter()
            .filter(|(s, sup)| {
                !all.iter()
                    .any(|(t, tsup)| t.len() > s.len() && s.is_subset_of(t) && tsup == *sup)
            })
            .map(|(s, _)| s.clone())
            .collect()
    }

    fn reference_maximal(all: &MiningResult) -> Vec<Itemset> {
        all.iter()
            .filter(|(s, _)| {
                !all.iter()
                    .any(|(t, _)| t.len() > s.len() && s.is_subset_of(t))
            })
            .map(|(s, _)| s.clone())
            .collect()
    }

    #[test]
    fn level_up_filter_matches_reference_on_table1() {
        let all = BruteForceMiner.mine(&table1(), 2);
        let mut fast: Vec<Itemset> = closed_itemsets(&all)
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        let mut slow = reference_closed(&all);
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow);

        let mut fast: Vec<Itemset> = maximal_itemsets(&all)
            .iter()
            .map(|(s, _)| s.clone())
            .collect();
        let mut slow = reference_maximal(&all);
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow);
    }

    #[test]
    fn maximal_from_closed_equals_maximal_from_all() {
        let all = BruteForceMiner.mine(&table1(), 2);
        let via_all = maximal_itemsets(&all);
        let via_closed = maximal_from_closed(&closed_itemsets(&all));
        assert_eq!(via_all.sorted(), via_closed.sorted());
        // And through the native closed miner, end to end.
        let native = native::ClosedMiner::default().mine(&table1(), 2);
        let via_native = maximal_from_closed(&native);
        assert_eq!(via_all.sorted(), via_native.sorted());
    }

    #[test]
    fn empty_result_stays_empty() {
        let all = BruteForceMiner.mine(&table1(), 10);
        assert!(closed_itemsets(&all).is_empty());
        assert!(maximal_itemsets(&all).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// `maximal_from_closed ∘ closed` equals direct maximal filtering
        /// on random databases.
        #[test]
        fn prop_maximal_from_closed(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let all = BruteForceMiner.mine(&db, min_support);
            let direct = maximal_itemsets(&all);
            let composed = maximal_from_closed(&closed_itemsets(&all));
            prop_assert_eq!(direct.sorted(), composed.sorted());
        }

        /// Level-up filtering equals the quadratic reference definitions.
        #[test]
        fn prop_matches_reference(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..6),
                1..30,
            ),
            min_support in 1u64..4,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let all = BruteForceMiner.mine(&db, min_support);
            let mut fast: Vec<Itemset> =
                closed_itemsets(&all).iter().map(|(s, _)| s.clone()).collect();
            let mut slow = reference_closed(&all);
            fast.sort();
            slow.sort();
            prop_assert_eq!(fast, slow);

            let mut fast: Vec<Itemset> =
                maximal_itemsets(&all).iter().map(|(s, _)| s.clone()).collect();
            let mut slow = reference_maximal(&all);
            fast.sort();
            slow.sort();
            prop_assert_eq!(fast, slow);
        }
    }
}
