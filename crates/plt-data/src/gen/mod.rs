//! Synthetic workload generators.
//!
//! Three families, matching what FIM evaluation sections run on:
//!
//! * [`quest`] — sparse market-basket data in the style of the IBM Quest
//!   generator (Agrawal & Srikant, VLDB'94 — the paper's reference \[2\]):
//!   transactions assembled from a pool of correlated "potentially large"
//!   itemsets with corruption. The canonical `T10.I4.D100K`-style datasets.
//! * [`dense`] — chess/mushroom-like dense data: a small item universe
//!   where each transaction covers a large fraction of it. This is the
//!   regime the paper recommends the top-down approach for.
//! * [`basket`] — a category-structured market-basket generator with
//!   named products, used by the domain examples.
//! * [`zipf`] — retail/click-log style data with power-law item
//!   popularity (the `retail`/`kosarak` regime).
//!
//! All generators are seeded and deterministic.

pub mod basket;
pub mod dense;
pub mod quest;
pub mod zipf;

use rand::Rng;

/// Draws from a Poisson distribution with the given mean via Knuth's
/// product-of-uniforms method — adequate for the small means (≲ 20) used
/// in transaction/pattern sizing, and dependency-free.
pub(crate) fn poisson<R: Rng>(rng: &mut R, mean: f64) -> usize {
    debug_assert!(
        mean > 0.0 && mean < 50.0,
        "Knuth's method needs small means"
    );
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Draws from an exponential distribution with the given mean (inverse
/// CDF).
pub(crate) fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Draws from a clipped normal distribution via Box–Muller; used for the
/// Quest corruption levels.
pub(crate) fn clipped_normal<R: Rng>(rng: &mut R, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + std * z).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_approximately_right() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let sum: usize = (0..n).map(|_| poisson(&mut rng, 4.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "empirical mean {mean}");
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "empirical mean {mean}");
    }

    #[test]
    fn clipped_normal_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..5_000 {
            let x = clipped_normal(&mut rng, 0.5, 0.3, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }
}
