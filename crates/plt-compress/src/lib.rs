//! # plt-compress — compressed, indexed PLT storage
//!
//! The paper's §6 claims the PLT "regulates the data in the database so
//! that they can be applicable to compression and indexing techniques,
//! which makes PLT suitable for supporting large databases". This crate
//! makes that concrete. Two structural facts of position vectors do the
//! work:
//!
//! 1. **positions are small** — they are rank *deltas*, so under any
//!    frequency-aware ranking most positions are 1 or 2 and LEB128 varints
//!    shrink them to one byte;
//! 2. **partitions sort well** — vectors of one length sorted
//!    lexicographically share long prefixes, so block front coding (store
//!    the length of the shared prefix with the previous entry, then only
//!    the suffix) removes most repeated bytes while restart points keep
//!    random access.
//!
//! On top of the byte stream sits a **sum index** (vector sum → entry
//! ordinals). Because a vector's sum is the rank of its last item
//! (Lemma 4.1.1), this is precisely the index a conditional miner needs:
//! `vectors_with_sum(j)` *is* item `j`'s conditional database, fetched
//! without decompressing unrelated blocks.

pub mod compressed;
pub mod crc;
pub mod file;
pub mod varint;

pub use compressed::{CompressedPlt, CompressionReport};
pub use crc::{crc32, crc32_update};
