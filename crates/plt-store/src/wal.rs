//! The append-only write-ahead log.
//!
//! Every mutation of the durable pipeline is journaled *before* it is
//! applied in memory. One file per checkpoint epoch; records are framed
//! so a torn tail (crash mid-write) is detected and discarded:
//!
//! ```text
//! file   := "PLTJ" version u32 LE | record*
//! record := len u32 LE | crc32 u32 LE (over payload) | payload
//! payload:= type u8 | seq u64 LE | body
//! ```
//!
//! Record types:
//!
//! | type | name       | body                                   | replayed? |
//! |------|------------|----------------------------------------|-----------|
//! | 1    | Delta      | removes then adds, varint-encoded      | yes       |
//! | 2    | Rerank     | ranked-item count varint               | no (info) |
//! | 3    | Checkpoint | epoch varint                           | no (info) |
//! | 4    | Evict      | shard varint                           | no (info) |
//!
//! Only `Delta` records change state on replay — re-ranks, evictions and
//! checkpoints are consequences the pipeline re-derives deterministically
//! from the delta sequence. They are still journaled because the
//! `store inspect` tooling and the recovery log want the operational
//! history.
//!
//! Durability: appends are buffered and `fdatasync`ed every
//! `sync_every` records (fsync batching); [`Wal::sync`] forces the
//! batch out, and checkpointing always syncs before the manifest rename.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use plt_compress::crc::crc32;
use plt_compress::varint;
use plt_core::item::Item;
use plt_shard::Delta;

/// WAL file magic.
pub const WAL_MAGIC: &[u8; 4] = b"PLTJ";

/// WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Upper bound on a single record's payload — anything larger is treated
/// as a torn/corrupt frame rather than an allocation request.
const MAX_RECORD: u32 = 1 << 30;

/// One journaled operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction batch (the only record replayed into state).
    Delta {
        /// Transactions removed by the batch.
        removes: Vec<Vec<Item>>,
        /// Transactions added by the batch.
        adds: Vec<Vec<Item>>,
    },
    /// The vocabulary drifted and the pipeline re-ranked.
    Rerank {
        /// Number of ranked items after the re-rank.
        ranked_items: u64,
    },
    /// A checkpoint completed; earlier WAL content is superseded.
    Checkpoint {
        /// Checkpoint epoch.
        epoch: u64,
    },
    /// A clean shard fragment was spilled to a segment and evicted.
    Evict {
        /// The evicted shard.
        shard: u32,
    },
}

/// A record plus its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqRecord {
    /// Monotone sequence number assigned at append time.
    pub seq: u64,
    /// The journaled operation.
    pub record: WalRecord,
}

fn put_transactions(out: &mut Vec<u8>, transactions: &[Vec<Item>]) {
    varint::put_u64(out, transactions.len() as u64);
    for t in transactions {
        varint::put_u64(out, t.len() as u64);
        for &item in t {
            varint::put_u32(out, item);
        }
    }
}

fn get_transactions(buf: &mut &[u8]) -> Vec<Vec<Item>> {
    let n = varint::get_u64(buf) as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let len = varint::get_u64(buf) as usize;
        let mut t = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            t.push(varint::get_u32(buf));
        }
        out.push(t);
    }
    out
}

impl WalRecord {
    fn type_byte(&self) -> u8 {
        match self {
            WalRecord::Delta { .. } => 1,
            WalRecord::Rerank { .. } => 2,
            WalRecord::Checkpoint { .. } => 3,
            WalRecord::Evict { .. } => 4,
        }
    }

    fn encode(&self, seq: u64) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.push(self.type_byte());
        payload.extend_from_slice(&seq.to_le_bytes());
        match self {
            WalRecord::Delta { removes, adds } => {
                put_transactions(&mut payload, removes);
                put_transactions(&mut payload, adds);
            }
            WalRecord::Rerank { ranked_items } => varint::put_u64(&mut payload, *ranked_items),
            WalRecord::Checkpoint { epoch } => varint::put_u64(&mut payload, *epoch),
            WalRecord::Evict { shard } => varint::put_u32(&mut payload, *shard),
        }
        payload
    }

    /// Decodes a CRC-verified payload. Returns `None` on any structural
    /// inconsistency (possible only through a CRC collision).
    fn decode(payload: &[u8]) -> Option<SeqRecord> {
        std::panic::catch_unwind(|| {
            let mut buf = payload;
            let kind = buf.first().copied()?;
            buf = &buf[1..];
            if buf.len() < 8 {
                return None;
            }
            let seq = u64::from_le_bytes(buf[..8].try_into().ok()?);
            buf = &buf[8..];
            let record = match kind {
                1 => {
                    let removes = get_transactions(&mut buf);
                    let adds = get_transactions(&mut buf);
                    WalRecord::Delta { removes, adds }
                }
                2 => WalRecord::Rerank {
                    ranked_items: varint::get_u64(&mut buf),
                },
                3 => WalRecord::Checkpoint {
                    epoch: varint::get_u64(&mut buf),
                },
                4 => WalRecord::Evict {
                    shard: varint::get_u32(&mut buf),
                },
                _ => return None,
            };
            if !buf.is_empty() {
                return None;
            }
            Some(SeqRecord { seq, record })
        })
        .ok()
        .flatten()
    }
}

impl From<&Delta> for WalRecord {
    fn from(delta: &Delta) -> WalRecord {
        WalRecord::Delta {
            removes: delta.removes.clone(),
            adds: delta.adds.clone(),
        }
    }
}

impl WalRecord {
    /// Converts a replayable record back into a pipeline delta.
    pub fn to_delta(&self) -> Option<Delta> {
        match self {
            WalRecord::Delta { removes, adds } => Some(Delta {
                adds: adds.clone(),
                removes: removes.clone(),
            }),
            _ => None,
        }
    }
}

/// Append handle over one WAL file.
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    bytes: u64,
    records: u64,
    unsynced: usize,
    sync_every: usize,
}

impl Wal {
    /// Creates a fresh (truncated) WAL whose first record will carry
    /// `first_seq`.
    pub fn create(path: &Path, first_seq: u64, sync_every: usize) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: first_seq,
            bytes: 8,
            records: 0,
            unsynced: 0,
            sync_every: sync_every.max(1),
        })
    }

    /// Opens an existing WAL: replays every intact record, truncates any
    /// torn tail, and positions the handle for appending. Returns the
    /// handle plus the replayed records in append order.
    pub fn open(path: &Path, sync_every: usize) -> io::Result<(Wal, Vec<SeqRecord>)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < 8 || &bytes[..4] != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a PLT WAL file (bad magic)",
            ));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != WAL_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported WAL version {version}"),
            ));
        }

        let (records, valid_len) = Self::scan(&bytes);
        if valid_len < bytes.len() as u64 {
            // Torn tail from a crash mid-append: cut it off so future
            // appends do not interleave with garbage.
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let next_seq = records.last().map(|r| r.seq + 1).unwrap_or(0);
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                next_seq,
                bytes: valid_len,
                records: records.len() as u64,
                unsynced: 0,
                sync_every: sync_every.max(1),
            },
            records,
        ))
    }

    /// Walks the framed records, stopping at the first torn or corrupt
    /// frame. Returns the intact records and the byte length of the valid
    /// prefix.
    fn scan(bytes: &[u8]) -> (Vec<SeqRecord>, u64) {
        let mut records = Vec::new();
        let mut pos = 8usize; // past magic + version
        while bytes.len() - pos >= 8 {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD || bytes.len() - pos - 8 < len as usize {
                break; // torn frame
            }
            let payload = &bytes[pos + 8..pos + 8 + len as usize];
            if crc32(payload) != crc {
                break; // corrupt frame — everything after is suspect
            }
            match WalRecord::decode(payload) {
                Some(record) => records.push(record),
                None => break,
            }
            pos += 8 + len as usize;
        }
        (records, pos as u64)
    }

    /// Appends a record, assigning it the next sequence number. Syncs to
    /// disk every `sync_every` appends.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<u64> {
        let seq = self.next_seq;
        let payload = record.encode(seq);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.next_seq += 1;
        self.bytes += frame.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(seq)
    }

    /// Forces buffered appends to disk (`fdatasync`).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes in the log, header included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Intact records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads every intact record of a WAL file without taking an append
/// handle (used by `store inspect` and recovery).
pub fn read_records(path: &Path) -> io::Result<Vec<SeqRecord>> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 || &bytes[..4] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a PLT WAL file (bad magic)",
        ));
    }
    Ok(Wal::scan(&bytes).0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("plt-wal-{}-{name}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Delta {
                removes: vec![],
                adds: vec![vec![1, 2, 3], vec![4, 5]],
            },
            WalRecord::Rerank { ranked_items: 42 },
            WalRecord::Delta {
                removes: vec![vec![1, 2, 3]],
                adds: vec![vec![6]],
            },
            WalRecord::Evict { shard: 7 },
            WalRecord::Checkpoint { epoch: 3 },
        ]
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path, 0, 2).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);

        let (wal, replayed) = Wal::open(&path, 2).unwrap();
        assert_eq!(replayed.len(), 5);
        for (i, (got, want)) in replayed.iter().zip(sample_records()).enumerate() {
            assert_eq!(got.seq, i as u64);
            assert_eq!(got.record, want);
        }
        assert_eq!(wal.next_seq(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path, 0, 1).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        // Chop the file mid-record: the last frame becomes torn.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (mut wal, replayed) = Wal::open(&path, 1).unwrap();
        assert_eq!(replayed.len(), 4, "torn final record dropped");
        // The handle appends cleanly after the truncation point.
        wal.append(&WalRecord::Evict { shard: 1 }).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&path, 1).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[4].record, WalRecord::Evict { shard: 1 });
        assert_eq!(replayed[4].seq, 4, "seq continues after the torn record");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::create(&path, 0, 1).unwrap();
        for r in sample_records() {
            wal.append(&r).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file: replay stops there.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, replayed) = Wal::open(&path, 1).unwrap();
        assert!(replayed.len() < 5, "corruption must drop the tail");
    }

    #[test]
    fn first_seq_offsets_the_log() {
        let path = tmp("seq");
        let mut wal = Wal::create(&path, 100, 1).unwrap();
        let seq = wal.append(&WalRecord::Evict { shard: 0 }).unwrap();
        assert_eq!(seq, 100);
        drop(wal);
        let (wal, replayed) = Wal::open(&path, 1).unwrap();
        assert_eq!(replayed[0].seq, 100);
        assert_eq!(wal.next_seq(), 101);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_wal_replays_empty() {
        let path = tmp("empty");
        Wal::create(&path, 0, 1).unwrap();
        let (wal, replayed) = Wal::open(&path, 1).unwrap();
        assert!(replayed.is_empty());
        assert_eq!(wal.next_seq(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOPExxxx").unwrap();
        assert!(Wal::open(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }
}
