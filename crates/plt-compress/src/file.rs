//! The `PLTC` on-disk format (version 2).
//!
//! ```text
//! "PLTC" | version varint | crc32 u32 LE
//! | min_support varint | num_transactions varint
//! | rank policy u8 | n_items varint | (item varint, support varint)×n
//! | n_partitions varint
//! | (k varint, entries varint, data_len varint, front-coded payload)×p
//! | fx-checksum u64 LE
//! ```
//!
//! Design notes:
//!
//! * indexes (restart tables, sum index) are derived data and are rebuilt
//!   on load rather than trusted from disk;
//! * the ranking is stored as `(item, support)` in rank order plus the
//!   policy byte; `ItemRanking::from_frequent_items` is deterministic, so
//!   reload reproduces the identical `Rank` function;
//! * two independent integrity checks: the v2 header CRC32 covers every
//!   byte after the CRC field up to the trailing checksum (standard
//!   polynomial, so external tools can verify it), and the trailing Fx
//!   hash covers the whole body including magic, version and the CRC
//!   field itself. Both detect corruption, not tampering — the format
//!   trusts its producer;
//! * version 1 files (no CRC field) are no longer readable; the version
//!   check rejects them with a clear error rather than misparsing.

use std::io::{Read, Write};
use std::path::Path;

use crate::compressed::CompressedPlt;

/// File magic.
pub const MAGIC: &[u8; 4] = b"PLTC";

/// Current format version. v2 added the header CRC32 and overlong-varint
/// rejection on decode.
pub const VERSION: u32 = 2;

/// Integrity checksum: the workspace Fx hash over a byte slice.
pub fn checksum(bytes: &[u8]) -> u64 {
    use std::hash::Hasher;
    let mut h = plt_core::hash::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Writes a compressed PLT to any writer.
pub fn write<W: Write>(mut writer: W, plt: &CompressedPlt) -> std::io::Result<()> {
    writer.write_all(&plt.to_bytes())
}

/// Reads a compressed PLT from any reader.
pub fn read<R: Read>(mut reader: R) -> std::io::Result<CompressedPlt> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    CompressedPlt::from_bytes(&bytes)
}

/// Saves to a file path.
pub fn save<P: AsRef<Path>>(path: P, plt: &CompressedPlt) -> std::io::Result<()> {
    write(std::fs::File::create(path)?, plt)
}

/// Loads from a file path.
pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<CompressedPlt> {
    read(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::ranking::RankPolicy;
    use proptest::prelude::*;

    fn sample(policy: RankPolicy) -> CompressedPlt {
        let db: Vec<Vec<u32>> = (0..200u32)
            .map(|i| vec![i % 9, 9 + (i % 7), 16 + (i % 5)])
            .collect();
        let plt = construct(
            &db,
            3,
            ConstructOptions {
                rank_policy: policy,
                with_prefixes: false,
            },
        )
        .unwrap();
        CompressedPlt::from_plt(&plt)
    }

    #[test]
    fn byte_round_trip_preserves_everything() {
        for policy in [
            RankPolicy::Lexicographic,
            RankPolicy::FrequencyDescending,
            RankPolicy::FrequencyAscending,
        ] {
            let original = sample(policy);
            let bytes = original.to_bytes();
            let loaded = CompressedPlt::from_bytes(&bytes).unwrap();
            assert_eq!(loaded.num_vectors(), original.num_vectors());
            let a = original.to_plt();
            let b = loaded.to_plt();
            assert_eq!(a.num_transactions(), b.num_transactions());
            assert_eq!(a.min_support(), b.min_support());
            assert_eq!(a.ranking(), b.ranking(), "{policy:?}");
            for (v, e) in a.iter() {
                assert_eq!(b.vector_frequency(v), e.freq);
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join(format!("plt-file-{}.pltc", std::process::id()));
        let original = sample(RankPolicy::Lexicographic);
        save(&path, &original).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_vectors(), original.num_vectors());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = sample(RankPolicy::Lexicographic).to_bytes();
        bytes[0] = b'X';
        let err = CompressedPlt::from_bytes(&bytes).unwrap_err();
        // Flipping the magic also breaks the checksum; either message is a
        // correct rejection.
        let msg = err.to_string();
        assert!(msg.contains("checksum") || msg.contains("magic"), "{msg}");
    }

    #[test]
    fn detects_corruption_anywhere() {
        let bytes = sample(RankPolicy::Lexicographic).to_bytes();
        for pos in [4, bytes.len() / 2, bytes.len() - 9] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xff;
            assert!(
                CompressedPlt::from_bytes(&corrupted).is_err(),
                "flip at {pos} must be detected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = sample(RankPolicy::Lexicographic).to_bytes();
        assert!(CompressedPlt::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(CompressedPlt::from_bytes(&bytes[..4]).is_err());
        assert!(CompressedPlt::from_bytes(&[]).is_err());
    }

    #[test]
    fn crc32_catches_body_corruption_even_with_restamped_checksum() {
        // Flip a body byte *and* re-stamp the trailing Fx checksum: only
        // the independent header CRC32 can catch this.
        let mut bytes = sample(RankPolicy::Lexicographic).to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        let body_len = bytes.len() - 8;
        let sum = checksum(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = CompressedPlt::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("CRC32"), "{err}");
    }

    #[test]
    fn header_crc_field_sits_after_magic_and_version() {
        let bytes = sample(RankPolicy::Lexicographic).to_bytes();
        assert_eq!(&bytes[..4], MAGIC);
        assert_eq!(bytes[4], VERSION as u8); // varint, single byte
        let stored = u32::from_le_bytes(bytes[5..9].try_into().unwrap());
        let computed = crate::crc::crc32(&bytes[9..bytes.len() - 8]);
        assert_eq!(stored, computed);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let original = sample(RankPolicy::Lexicographic);
        let mut bytes = original.to_bytes();
        // Version is the varint right after the 4-byte magic; VERSION = 1
        // encodes as a single byte. Patch it and re-stamp the checksum.
        bytes[4] = 9;
        let body_len = bytes.len() - 8;
        let sum = checksum(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        let err = CompressedPlt::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// compress → file → decode round trip on random databases: the
        /// reloaded PLT carries the identical vector → frequency table,
        /// and — Lemma 4.1.2 — assigns every itemset the same canonical
        /// position-vector key as the original, so index lookups built
        /// against one answer correctly against the other.
        #[test]
        fn prop_file_roundtrip_preserves_canonical_keys(
            rows in proptest::collection::vec(
                proptest::collection::btree_set(0u32..30, 1..7),
                1..40,
            ),
            min_support in 1u64..5,
        ) {
            use std::sync::atomic::{AtomicUsize, Ordering};
            static CASE: AtomicUsize = AtomicUsize::new(0);

            let db: Vec<Vec<u32>> =
                rows.into_iter().map(|t| t.into_iter().collect()).collect();
            let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
            let compressed = CompressedPlt::from_plt(&plt);

            let path = std::env::temp_dir().join(format!(
                "plt-file-prop-{}-{}.pltc",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed),
            ));
            save(&path, &compressed).unwrap();
            let decoded = load(&path).unwrap().to_plt();
            std::fs::remove_file(&path).ok();

            // The stored table survives byte-for-byte in meaning: same
            // ranking, same (positions, frequency) multiset.
            prop_assert_eq!(plt.ranking(), decoded.ranking());
            prop_assert_eq!(plt.min_support(), decoded.min_support());
            prop_assert_eq!(plt.num_transactions(), decoded.num_transactions());
            let table = |p: &plt_core::Plt| -> std::collections::BTreeSet<(Vec<u32>, u64)> {
                p.iter()
                    .map(|(v, e)| (v.positions().to_vec(), e.freq))
                    .collect()
            };
            prop_assert_eq!(table(&plt), table(&decoded));

            // Canonical keys: every source row (restricted to its frequent
            // items) keys identically through both PLTs.
            for row in &db {
                let frequent: Vec<u32> = row
                    .iter()
                    .copied()
                    .filter(|&i| plt.ranking().rank(i).is_some())
                    .collect();
                if frequent.is_empty() {
                    continue;
                }
                let original = plt_core::canonical_key(&frequent, &plt);
                let reloaded = plt_core::canonical_key(&frequent, &decoded);
                prop_assert!(original.is_some(), "no key for {:?}", frequent);
                prop_assert_eq!(original, reloaded, "keys diverge for {:?}", frequent);
            }
        }
    }
}
