//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! Work really is executed in parallel: terminal operations split the
//! (materialised) input into `current_num_threads()` contiguous chunks and
//! run them on `std::thread::scope` threads. That covers the shapes used
//! here — chunked folds, `map`/`collect`, `map`/`reduce` — without a
//! work-stealing scheduler. Nested parallelism inside a worker runs
//! sequentially (the pool size is a thread-local).

// The identity-function type parameters (`fn(T) -> T`) that stand in for
// rayon's adapter chain read as "complex types" to clippy; they are the
// simplest spelling this shim has.
#![allow(clippy::type_complexity)]

use std::cell::Cell;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
    };
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads terminal operations will use on this thread.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(default_threads)
}

/// Pool-construction error (never produced by this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Fixes the worker count (0 = one per core, as in rayon).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": in this shim, a parallelism level installed for the duration
/// of a closure rather than a set of persistent workers.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's parallelism level active.
    pub fn install<T: Send>(&self, f: impl FnOnce() -> T + Send) -> T {
        let prev = POOL_THREADS.with(|p| p.replace(Some(self.num_threads)));
        let out = f();
        POOL_THREADS.with(|p| p.set(prev));
        out
    }

    /// The installed worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Splits `items` into at most `current_num_threads()` contiguous chunks
/// and maps each chunk on its own scoped thread, preserving chunk order.
fn run_chunked<I, T, F>(mut items: Vec<I>, per_chunk: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(Vec<I>) -> T + Sync,
{
    let threads = current_num_threads().max(1);
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() == 1 {
        return vec![per_chunk(items)];
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk_len));
        chunks.push(tail);
    }
    chunks.reverse(); // split_off peeled from the back; restore input order
    let f = &per_chunk;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || f(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// A materialised parallel iterator: the single concrete pipeline type.
///
/// `map` composes lazily per element; terminal operations fan chunks out
/// across threads.
pub struct ParallelIterator<I, F> {
    items: Vec<I>,
    map: F,
}

impl<I: Send> ParallelIterator<I, fn(I) -> I> {
    fn new(items: Vec<I>) -> Self {
        ParallelIterator {
            items,
            map: std::convert::identity,
        }
    }
}

impl<I, O, F> ParallelIterator<I, F>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    /// Applies `g` to every element.
    pub fn map<P, G>(self, g: G) -> ParallelIterator<I, impl Fn(I) -> P + Sync>
    where
        G: Fn(O) -> P + Sync,
        P: Send,
    {
        let f = self.map;
        ParallelIterator {
            items: self.items,
            map: move |x| g(f(x)),
        }
    }

    /// Runs the pipeline and collects outputs in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        let f = &self.map;
        run_chunked(self.items, |chunk| {
            chunk.into_iter().map(f).collect::<Vec<O>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Folds each chunk from `identity()`, yielding the per-chunk
    /// accumulators as a new parallel iterator (as in rayon).
    pub fn fold<T, ID, G>(self, identity: ID, fold_op: G) -> ParallelIterator<T, fn(T) -> T>
    where
        T: Send,
        ID: Fn() -> T + Sync,
        G: Fn(T, O) -> T + Sync,
    {
        let f = &self.map;
        let partials = run_chunked(self.items, |chunk| {
            chunk.into_iter().map(f).fold(identity(), &fold_op)
        });
        ParallelIterator::new(partials)
    }

    /// Reduces all outputs with `op`, starting each chunk from
    /// `identity()`.
    pub fn reduce<ID, G>(self, identity: ID, op: G) -> O
    where
        ID: Fn() -> O + Sync,
        G: Fn(O, O) -> O + Sync,
    {
        let f = &self.map;
        let op_ref = &op;
        run_chunked(self.items, |chunk| {
            chunk.into_iter().map(f).fold(identity(), op_ref)
        })
        .into_iter()
        .fold(identity(), op)
    }

    /// Sums all outputs.
    pub fn sum<S>(self) -> S
    where
        O: Into<S>,
        S: std::iter::Sum<O> + Send + std::iter::Sum<S>,
    {
        let f = &self.map;
        run_chunked(self.items, |chunk| chunk.into_iter().map(f).sum::<S>())
            .into_iter()
            .sum()
    }

    /// Runs the pipeline for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(O) + Sync,
    {
        let f = &self.map;
        run_chunked(self.items, |chunk| chunk.into_iter().map(f).for_each(&g));
    }
}

impl<I, T, E, F> ParallelIterator<I, F>
where
    I: Send,
    T: Send,
    E: Send,
    F: Fn(I) -> Result<T, E> + Sync,
{
    /// Fallible [`reduce`](Self::reduce): short-circuits within each chunk
    /// on the first `Err`.
    pub fn try_reduce<ID, G>(self, identity: ID, op: G) -> Result<T, E>
    where
        ID: Fn() -> T + Sync,
        G: Fn(T, T) -> Result<T, E> + Sync,
    {
        let f = &self.map;
        let op_ref = &op;
        let partials = run_chunked(self.items, |chunk| -> Result<T, E> {
            let mut acc = identity();
            for item in chunk {
                acc = op_ref(acc, f(item)?)?;
            }
            Ok(acc)
        });
        let mut acc = identity();
        for partial in partials {
            acc = op(acc, partial?)?;
        }
        Ok(acc)
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParallelIterator<Self::Item, fn(Self::Item) -> Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParallelIterator<T, fn(T) -> T> {
        ParallelIterator::new(self)
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParallelIterator<$t, fn($t) -> $t> {
                ParallelIterator::new(self.collect())
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;

            fn into_par_iter(self) -> ParallelIterator<$t, fn($t) -> $t> {
                ParallelIterator::new(self.collect())
            }
        }
    )*};
}
range_into_par!(u8, u16, u32, u64, usize, i32, i64);

/// `par_iter()` for shared slices and vectors.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// Parallel iterator over references.
    fn par_iter(&'a self) -> ParallelIterator<Self::Item, fn(Self::Item) -> Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParallelIterator<&'a T, fn(&'a T) -> &'a T> {
        ParallelIterator::new(self.iter().collect())
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParallelIterator<&'a T, fn(&'a T) -> &'a T> {
        ParallelIterator::new(self.iter().collect())
    }
}

/// `par_chunks()` for slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous sub-slices of length `size`.
    fn par_chunks<'a>(&'a self, size: usize) -> ParallelIterator<&'a [T], fn(&'a [T]) -> &'a [T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks<'a>(&'a self, size: usize) -> ParallelIterator<&'a [T], fn(&'a [T]) -> &'a [T]> {
        assert!(size > 0, "chunk size must be positive");
        ParallelIterator::new(self.chunks(size).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0u64..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u64..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn fold_reduce_matches_sequential() {
        let data: Vec<u64> = (1..=1_000).collect();
        let total = data
            .par_chunks(64)
            .fold(|| 0u64, |acc, chunk| acc + chunk.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn try_reduce_propagates_errors() {
        let ok: Result<u64, String> = (1u64..=100)
            .into_par_iter()
            .map(Ok)
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(ok, Ok(5_050));

        let err: Result<u64, String> = (1u64..=100)
            .into_par_iter()
            .map(|x| {
                if x == 37 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(err, Err("boom".to_string()));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = pool.install(|| {
            ThreadPoolBuilder::new()
                .num_threads(1)
                .build()
                .unwrap()
                .install(current_num_threads)
        });
        assert_eq!(nested, 1);
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0u64..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        assert!(ids.into_inner().unwrap().len() > 1);
    }
}
