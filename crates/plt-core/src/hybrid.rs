//! The hybrid miner — the coupling the paper's conclusion sketches.
//!
//! §6 positions the two approaches at opposite ends: conditional mining
//! "is best used when the data is dense and a high support count is
//! required", while top-down suits "situations where a very low minimum
//! support is provided … *or, if it coupled with a strategy with which to
//! compute the frequency and high level*". The hybrid realises that
//! coupling: it runs the conditional recursion (anti-monotone pruning at
//! the top, where it pays), but when a conditional database becomes small
//! enough that nearly its whole subset lattice is going to be frequent
//! anyway, it finishes that branch with one top-down propagation instead
//! of recursing — the same role FP-growth's single-path shortcut plays,
//! but applicable to *any* small conditional structure, not just paths.
//!
//! The switch criterion is an upper bound on the top-down cost:
//! `Σ_vectors 2^len ≤ budget`. Correctness does not depend on the budget —
//! both finishes compute exact supports — so the knob is purely a
//! performance trade (ablated in experiment X4's spirit; tested for
//! equivalence at every extreme here).

use crate::construct::{construct, ConstructOptions};
use crate::item::{Item, Itemset, Rank, Support};
use crate::miner::{Miner, MiningResult};
use crate::plt::Plt;
use crate::ranking::RankPolicy;
use crate::topdown::all_subset_supports_of;

use crate::conditional::{conditional_construct, SumGroups};

/// The hybrid conditional/top-down miner.
///
/// # Examples
///
/// ```
/// use plt_core::{HybridMiner, ConditionalMiner, Miner};
///
/// let db = vec![vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![1, 2, 3]];
/// let hybrid = HybridMiner::default().mine(&db, 2);
/// let conditional = ConditionalMiner::default().mine(&db, 2);
/// assert_eq!(hybrid.sorted(), conditional.sorted());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct HybridMiner {
    /// Item-order policy for the underlying PLT.
    pub rank_policy: RankPolicy,
    /// Branches whose estimated top-down cost (`Σ 2^len` over distinct
    /// vectors) is at most this are finished by propagation. `0` degrades
    /// to pure conditional mining; `u64::MAX` top-downs everything the
    /// lattice guard allows.
    pub topdown_budget: u64,
}

impl Default for HybridMiner {
    fn default() -> Self {
        HybridMiner {
            rank_policy: RankPolicy::Lexicographic,
            topdown_budget: 2_048,
        }
    }
}

/// The PLT-level entry point: the whole run (conditional recursion plus any
/// top-down finishes) is reported as one `mine/hybrid` span, with the
/// budget surfaced as a gauge.
impl crate::miner::Mine for HybridMiner {
    fn mine(&self, plt: &Plt, obs: &mut plt_obs::Obs) -> MiningResult {
        let t0 = obs.start();
        let mut groups: SumGroups = SumGroups::new();
        for (v, e) in plt.iter() {
            *groups
                .entry(e.sum)
                .or_default()
                .entry(v.clone())
                .or_insert(0) += e.freq;
        }
        let mut result = MiningResult::new(plt.min_support(), plt.num_transactions());
        let mut suffix = Vec::new();
        self.mine_groups(groups, plt, &mut suffix, &mut result);
        obs.gauge("hybrid.topdown_budget", self.topdown_budget);
        obs.stop("mine/hybrid", t0);
        result
    }
}

impl HybridMiner {
    /// Conditional recursion with the top-down finish.
    fn mine_groups(
        &self,
        mut groups: SumGroups,
        plt: &Plt,
        suffix: &mut Vec<Rank>,
        result: &mut MiningResult,
    ) {
        // Top-down finish for the whole current structure when cheap:
        // propagate every subset's frequency once and emit the frequent
        // ones. Valid exactly at the entry of a (conditional) structure,
        // before any folding has mixed partial counts in.
        if topdown_cost(&groups, self.topdown_budget).is_some() {
            self.finish_topdown(&groups, plt, suffix, result);
            return;
        }

        while let Some((&j, _)) = groups.iter().next_back() {
            let group = groups.remove(&j).expect("key just observed");
            let support: Support = group.values().sum();

            let mut conditional = Vec::new();
            for (v, f) in group {
                if let Some(prefix) = v.parent() {
                    *groups
                        .entry(prefix.sum())
                        .or_default()
                        .entry(prefix.clone())
                        .or_insert(0) += f;
                    conditional.push((prefix, f));
                }
            }
            if support < plt.min_support() {
                continue;
            }
            suffix.push(j);
            let items = plt.ranking().items_for_ranks(suffix);
            result.insert(Itemset::from_sorted(items), support);
            let cplt = conditional_construct(&conditional, plt.min_support());
            if !cplt.is_empty() {
                self.mine_groups(cplt, plt, suffix, result);
            }
            suffix.pop();
        }
    }

    /// One top-down propagation over a (conditional) structure: emits
    /// every frequent subset extended by the current suffix.
    fn finish_topdown(
        &self,
        groups: &SumGroups,
        plt: &Plt,
        suffix: &[Rank],
        result: &mut MiningResult,
    ) {
        let entries = groups.values().flat_map(|m| m.iter().map(|(v, &f)| (v, f)));
        let table = all_subset_supports_of(entries);
        for (v, support) in table.iter() {
            if support >= plt.min_support() {
                let mut ranks = v.ranks();
                ranks.extend_from_slice(suffix);
                let items = plt.ranking().items_for_ranks(&ranks);
                result.insert(Itemset::from_sorted(items), support);
            }
        }
    }
}

/// Upper-bounds the top-down cost `Σ 2^len`; `None` when it exceeds
/// `cap` (early exit so huge structures don't even finish the sum).
fn topdown_cost(groups: &SumGroups, cap: u64) -> Option<u64> {
    let mut cost: u64 = 0;
    for m in groups.values() {
        for v in m.keys() {
            let len = v.len() as u32;
            if len >= 63 {
                return None;
            }
            cost = cost.saturating_add(1u64 << len);
            if cost > cap {
                return None;
            }
        }
    }
    Some(cost)
}

impl Miner for HybridMiner {
    fn name(&self) -> &'static str {
        "plt-hybrid"
    }

    fn mine(&self, transactions: &[Vec<Item>], min_support: Support) -> MiningResult {
        let plt = construct(
            transactions,
            min_support,
            ConstructOptions {
                rank_policy: self.rank_policy,
                with_prefixes: false,
            },
        )
        .expect("invalid transaction database");
        crate::miner::Mine::mine_plt(self, &plt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditional::ConditionalMiner;
    use crate::miner::BruteForceMiner;
    use proptest::prelude::*;

    fn table1() -> Vec<Vec<Item>> {
        vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ]
    }

    #[test]
    fn matches_brute_force_at_every_budget() {
        let expect = BruteForceMiner.mine(&table1(), 2);
        for budget in [0, 1, 16, 2_048, u64::MAX] {
            let miner = HybridMiner {
                topdown_budget: budget,
                ..Default::default()
            };
            let got = miner.mine(&table1(), 2);
            assert_eq!(got.sorted(), expect.sorted(), "budget {budget}");
        }
    }

    #[test]
    fn zero_budget_equals_pure_conditional() {
        let miner = HybridMiner {
            topdown_budget: 0,
            ..Default::default()
        };
        let a = miner.mine(&table1(), 2);
        let b = ConditionalMiner::default().mine(&table1(), 2);
        assert_eq!(a.sorted(), b.sorted());
    }

    #[test]
    fn dense_database_with_finish() {
        // Dense, short transactions: the finish should trigger high in the
        // recursion and still be exact.
        let db: Vec<Vec<Item>> = (0..200u32)
            .map(|i| (0..8u32).filter(|&b| (i >> b) & 1 == 1 || b < 3).collect())
            .collect();
        let expect = BruteForceMiner.mine(&db, 5);
        let got = HybridMiner::default().mine(&db, 5);
        assert_eq!(got.sorted(), expect.sorted());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The hybrid agrees with brute force for random budgets.
        #[test]
        fn prop_matches_brute_force(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 1..6),
                1..35,
            ),
            min_support in 1u64..5,
            budget in 0u64..10_000,
        ) {
            let db: Vec<Vec<Item>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let expect = BruteForceMiner.mine(&db, min_support);
            let miner = HybridMiner {
                topdown_budget: budget,
                ..Default::default()
            };
            let got = miner.mine(&db, min_support);
            prop_assert_eq!(got.sorted(), expect.sorted());
        }
    }
}
