//! The query engine: snapshot swap point, response cache, metrics.
//!
//! Readers never block writers and writers never block readers for long:
//! the current [`Snapshot`] lives in a generation-aware
//! [`ReaderPool`] — a request pins one generation for its whole
//! lifetime (a single `Arc` clone in the critical section) and queries
//! run against that pin however many rebuild swaps land meanwhile.
//! Publishing a new snapshot is one pointer swap plus a cache clear;
//! reactor workers skip even the swap lock on the fast path via a
//! per-worker [`ReaderCache`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::cache::ShardedCache;
use crate::json::Json;
use crate::metrics::{Endpoint, Metrics};
use crate::proto::{err_response, negotiate_version, ok_response, Request};
use crate::reader_pool::{ReadGuard, ReaderCache, ReaderPool};
use crate::snapshot::Snapshot;

/// Degradation state of the serving snapshot. The builder drives the
/// transitions: `Fresh` after a successful publish, `Rebuilding` while a
/// re-mine is in flight, `Stale` when a rebuild failed — the engine keeps
/// answering from the last good snapshot and says so.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingState {
    /// The current snapshot is the newest successful rebuild.
    Fresh,
    /// The last rebuild failed; answers come from the last good snapshot.
    Stale,
    /// A rebuild is in flight; answers come from the previous snapshot.
    Rebuilding,
}

impl ServingState {
    pub fn as_str(self) -> &'static str {
        match self {
            ServingState::Fresh => "fresh",
            ServingState::Stale => "stale",
            ServingState::Rebuilding => "rebuilding",
        }
    }

    fn from_u8(v: u8) -> ServingState {
        match v {
            1 => ServingState::Stale,
            2 => ServingState::Rebuilding,
            _ => ServingState::Fresh,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            ServingState::Fresh => 0,
            ServingState::Stale => 1,
            ServingState::Rebuilding => 2,
        }
    }
}

/// Shared engine state: one per server, `Arc`-cloned into every
/// connection handler.
#[derive(Debug)]
pub struct Engine {
    snapshot: ReaderPool<Snapshot>,
    cache: ShardedCache,
    metrics: Metrics,
    state: AtomicU8,
    /// Cost-based plans keyed by normalized query text; entries carry the
    /// generation they were planned against, so a publish invalidates
    /// them lazily on next lookup.
    plans: plt_query::PlanCache,
    /// Optional shared plt-obs recorder; when attached, query executions
    /// emit `query.*` counters and `query/execute` spans into it.
    obs: OnceLock<Arc<Mutex<plt_obs::MetricsRecorder>>>,
}

impl Engine {
    /// Wraps an initial snapshot with a default-sized cache (1024
    /// entries over 8 shards).
    pub fn new(initial: Snapshot) -> Engine {
        Engine::with_cache(initial, 1024, 8)
    }

    /// Wraps an initial snapshot with an explicit cache geometry.
    pub fn with_cache(initial: Snapshot, cache_capacity: usize, shards: usize) -> Engine {
        let metrics = Metrics::default();
        let generation = initial.generation();
        metrics.generation.store(generation, Ordering::Relaxed);
        Engine {
            snapshot: ReaderPool::new(Arc::new(initial), generation),
            cache: ShardedCache::new(cache_capacity, shards),
            metrics,
            state: AtomicU8::new(ServingState::Fresh.as_u8()),
            plans: plt_query::PlanCache::new(256),
            obs: OnceLock::new(),
        }
    }

    /// Attaches a shared plt-obs recorder; query executions then emit
    /// `query.*` counters and spans into it. First attachment wins.
    pub fn attach_obs(&self, obs: Arc<Mutex<plt_obs::MetricsRecorder>>) {
        let _ = self.obs.set(obs);
    }

    /// The query-language plan cache (stats and tests).
    pub fn plan_cache(&self) -> &plt_query::PlanCache {
        &self.plans
    }

    /// The current snapshot. Lock held only for the `Arc` clone.
    pub fn current(&self) -> Arc<Snapshot> {
        self.snapshot.pin().value_arc()
    }

    /// Pins the current snapshot generation for a request's lifetime:
    /// the guard keeps answering from the same generation however many
    /// publishes land while it is held.
    pub fn pin(&self) -> ReadGuard<Snapshot> {
        self.snapshot.pin()
    }

    /// Like [`pin`](Self::pin), but through a per-worker cache — the
    /// reactor's lock-free fast path (one atomic generation check per
    /// request unless a publish happened).
    pub fn pin_with(&self, cache: &mut ReaderCache<Snapshot>) -> ReadGuard<Snapshot> {
        self.snapshot.pin_with(cache)
    }

    /// The reader pool itself (swap/pin gauges for `stats` and tests).
    pub fn reader_pool(&self) -> &ReaderPool<Snapshot> {
        &self.snapshot
    }

    /// Publishes a new snapshot: pointer swap, then cache invalidation
    /// (cached responses answered for the old generation). In-flight
    /// requests keep their pinned generation; the old snapshot is freed
    /// when its last guard releases.
    pub fn publish(&self, snapshot: Arc<Snapshot>) {
        let generation = snapshot.generation();
        self.snapshot.swap(snapshot, generation);
        self.state
            .store(ServingState::Fresh.as_u8(), Ordering::SeqCst);
        self.cache.clear();
        self.metrics.generation.store(generation, Ordering::Relaxed);
        self.metrics.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// Current degradation state.
    pub fn state(&self) -> ServingState {
        ServingState::from_u8(self.state.load(Ordering::SeqCst))
    }

    /// Whether answers come from a snapshot older than the data the
    /// service has accepted (the last rebuild failed).
    pub fn is_stale(&self) -> bool {
        self.state() == ServingState::Stale
    }

    fn set_state(&self, state: ServingState) {
        let prev = self.state.swap(state.as_u8(), Ordering::SeqCst);
        if prev != state.as_u8() {
            // Cached responses embed the previous `stale` flag.
            self.cache.clear();
        }
    }

    /// Builder hook: a rebuild is starting.
    pub fn mark_rebuilding(&self) {
        self.set_state(ServingState::Rebuilding);
    }

    /// Builder hook: a rebuild died. The last good snapshot keeps
    /// serving; the failure is counted and surfaced via `STATS` and the
    /// `stale` response field until a publish succeeds.
    pub fn mark_stale(&self) {
        self.metrics
            .builder_failures
            .fetch_add(1, Ordering::Relaxed);
        self.set_state(ServingState::Stale);
    }

    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Drops all cached responses (publish does this automatically;
    /// exposed for benchmarks and operational tooling).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Handles one request, returning the rendered single-line JSON
    /// response. Read endpoints go through the cache; `stats` and `ping`
    /// always recompute. `ingest`/`shutdown` are handled by the layers
    /// above (builder/server) — here they only get an acknowledgement.
    pub fn handle(&self, request: &Request) -> String {
        self.handle_inner(request, None)
    }

    /// Like [`handle`](Self::handle), but pinning the snapshot through a
    /// per-worker [`ReaderCache`] — the reactor's lock-free fast path.
    pub fn handle_cached(&self, request: &Request, reader: &mut ReaderCache<Snapshot>) -> String {
        self.handle_inner(request, Some(reader))
    }

    fn handle_inner(
        &self,
        request: &Request,
        reader: Option<&mut ReaderCache<Snapshot>>,
    ) -> String {
        let start = Instant::now();
        let endpoint = endpoint_of(request);
        if let Some(e) = endpoint_cacheable(request) {
            let key = request.cache_key();
            if let Some(hit) = self.cache.get(&key) {
                self.metrics.endpoint(e).record(start.elapsed(), Some(true));
                // A cached `query` payload froze the provenance of its
                // original (fresh) run; flip `cache_hit` so `--explain`
                // reports this serve truthfully while keeping the frozen
                // plan/cost (the cache is generation-scoped, so the plan
                // is still the one that would be chosen).
                if matches!(e, Endpoint::Query) {
                    return mark_response_cache_hit(hit);
                }
                return hit;
            }
            let response = self.answer(request, reader).to_string();
            self.cache.put(key, response.clone());
            self.metrics
                .endpoint(e)
                .record(start.elapsed(), Some(false));
            return response;
        }
        let response = self.answer(request, reader).to_string();
        if let Some(e) = endpoint {
            self.metrics.endpoint(e).record(start.elapsed(), None);
        }
        response
    }

    fn answer(&self, request: &Request, reader: Option<&mut ReaderCache<Snapshot>>) -> Json {
        // Pin one generation for the whole request: every field of the
        // response comes from the same snapshot even if a publish lands
        // mid-answer.
        let snap = match reader {
            Some(cache) => self.pin_with(cache),
            None => self.pin(),
        };
        // Every query response names its generation and whether that
        // generation is known-stale (last rebuild failed), so clients can
        // tell degraded answers from fresh ones.
        let stale = self.is_stale();
        match request {
            Request::Support { items } => {
                let a = snap.support(items);
                ok_response(vec![
                    ("support", Json::from(a.support)),
                    ("frequent", Json::Bool(a.frequent)),
                    ("source", Json::str(a.source.as_str())),
                    ("generation", Json::from(snap.generation())),
                    ("stale", Json::Bool(stale)),
                ])
            }
            Request::TopK { k, min_size } => {
                let rows = snap
                    .top_k(*k, *min_size)
                    .into_iter()
                    .map(|(itemset, support)| {
                        Json::obj(vec![
                            (
                                "items",
                                Json::Arr(
                                    itemset
                                        .items()
                                        .iter()
                                        .map(|&i| Json::from(i as u64))
                                        .collect(),
                                ),
                            ),
                            ("support", Json::from(support)),
                        ])
                    })
                    .collect();
                ok_response(vec![
                    ("itemsets", Json::Arr(rows)),
                    ("generation", Json::from(snap.generation())),
                    ("stale", Json::Bool(stale)),
                ])
            }
            Request::Extensions { items, k } => {
                let rows = snap
                    .extensions(items, *k)
                    .into_iter()
                    .map(|(item, support)| {
                        Json::obj(vec![
                            ("item", Json::from(item as u64)),
                            ("support", Json::from(support)),
                        ])
                    })
                    .collect();
                ok_response(vec![
                    ("extensions", Json::Arr(rows)),
                    ("generation", Json::from(snap.generation())),
                    ("stale", Json::Bool(stale)),
                ])
            }
            Request::Recommend { items, k } => {
                let rows = snap
                    .recommend(items, *k)
                    .into_iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("item", Json::from(r.item as u64)),
                            ("confidence", Json::from(r.confidence)),
                            ("lift", Json::from(r.lift)),
                            ("support", Json::from(r.support)),
                            (
                                "because",
                                Json::Arr(
                                    r.because
                                        .items()
                                        .iter()
                                        .map(|&i| Json::from(i as u64))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                ok_response(vec![
                    ("recommendations", Json::Arr(rows)),
                    ("generation", Json::from(snap.generation())),
                    ("stale", Json::Bool(stale)),
                ])
            }
            Request::Query { expr } => {
                let result = match self.obs.get() {
                    Some(shared) => {
                        let mut recorder = shared.lock().unwrap();
                        let mut obs = plt_obs::Obs::new(&mut *recorder);
                        plt_query::run_cached(expr, &*snap, &self.plans, &mut obs)
                    }
                    None => {
                        let mut obs = plt_obs::Obs::none();
                        plt_query::run_cached(expr, &*snap, &self.plans, &mut obs)
                    }
                };
                match result {
                    Ok((rows, prov)) => {
                        self.metrics.query.record(Some(prov.plan.op));
                        if prov.approx_requested {
                            self.metrics.query.record_approx(prov.approx);
                        }
                        ok_response(vec![
                            ("row_kind", Json::str(rows.kind())),
                            ("rows", rows_json(&rows)),
                            ("plan", Json::str(prov.plan.op.as_str())),
                            ("cost", Json::from(prov.plan.cost)),
                            ("cache_hit", Json::Bool(prov.cache_hit)),
                            ("approx", Json::Bool(prov.approx)),
                            (
                                "error_bound",
                                prov.error_bound.map(Json::from).unwrap_or(Json::Null),
                            ),
                            ("generation", Json::from(snap.generation())),
                            ("stale", Json::Bool(stale)),
                        ])
                    }
                    Err(e) => {
                        self.metrics.query.record(None);
                        err_response(e.to_string())
                    }
                }
            }
            Request::Stats => {
                let endpoints = self
                    .metrics
                    .report()
                    .into_iter()
                    .map(|(name, requests, hits, misses, p50, p99)| {
                        Json::obj(vec![
                            ("endpoint", Json::str(name)),
                            ("requests", Json::from(requests)),
                            ("cache_hits", Json::from(hits)),
                            ("cache_misses", Json::from(misses)),
                            ("p50_us", p50.map(Json::from).unwrap_or(Json::Null)),
                            ("p99_us", p99.map(Json::from).unwrap_or(Json::Null)),
                        ])
                    })
                    .collect();
                ok_response(vec![
                    ("generation", Json::from(snap.generation())),
                    ("stale", Json::Bool(stale)),
                    ("state", Json::str(self.state().as_str())),
                    (
                        "publishes",
                        Json::from(self.metrics.publishes.load(Ordering::Relaxed)),
                    ),
                    (
                        "builder_failures",
                        Json::from(self.metrics.builder_failures.load(Ordering::Relaxed)),
                    ),
                    (
                        "protocol_errors",
                        Json::from(self.metrics.protocol_errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "timeouts",
                        Json::from(self.metrics.timeouts.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected_connections",
                        Json::from(self.metrics.rejected_connections.load(Ordering::Relaxed)),
                    ),
                    ("num_transactions", Json::from(snap.num_transactions())),
                    ("min_support", Json::from(snap.min_support())),
                    ("num_itemsets", Json::from(snap.num_itemsets() as u64)),
                    ("num_rules", Json::from(snap.num_rules() as u64)),
                    ("cache_entries", Json::from(self.cache.len() as u64)),
                    ("rebuild", {
                        let (rebuilds, push_us, rerank_us, snapshot_us, total_us) =
                            self.metrics.rebuild_report();
                        Json::obj(vec![
                            ("rebuilds", Json::from(rebuilds)),
                            ("push_us", Json::from(push_us)),
                            ("rerank_us", Json::from(rerank_us)),
                            ("snapshot_us", Json::from(snapshot_us)),
                            ("total_us", Json::from(total_us)),
                            (
                                "dirty_shards",
                                Json::from(self.metrics.shards_remined.load(Ordering::Relaxed)),
                            ),
                            (
                                "shard_count",
                                Json::from(self.metrics.shard_count.load(Ordering::Relaxed)),
                            ),
                            ("sampled", {
                                let (sampled, attempts, violations, fallbacks) =
                                    self.metrics.sampled_report();
                                Json::obj(vec![
                                    ("rebuilds", Json::from(sampled)),
                                    ("attempts", Json::from(attempts)),
                                    ("border_violations", Json::from(violations)),
                                    ("exact_fallbacks", Json::from(fallbacks)),
                                ])
                            }),
                        ])
                    }),
                    ("sketch", {
                        match plt_query::Source::sketch(&*snap) {
                            Some(sk) => Json::obj(vec![
                                ("epsilon", Json::from(sk.epsilon())),
                                ("cost", Json::from(sk.cost() as u64)),
                                ("memory_bytes", Json::from(sk.memory_bytes() as u64)),
                            ]),
                            None => Json::Null,
                        }
                    }),
                    ("endpoints", Json::Arr(endpoints)),
                    ("storage", {
                        let s = &self.metrics.storage;
                        if s.is_enabled() {
                            Json::obj(vec![
                                ("wal_bytes", Json::from(s.wal_bytes.load(Ordering::Relaxed))),
                                (
                                    "wal_records",
                                    Json::from(s.wal_records.load(Ordering::Relaxed)),
                                ),
                                ("segments", Json::from(s.segments.load(Ordering::Relaxed))),
                                (
                                    "segment_bytes",
                                    Json::from(s.segment_bytes.load(Ordering::Relaxed)),
                                ),
                                (
                                    "compactions",
                                    Json::from(s.compactions.load(Ordering::Relaxed)),
                                ),
                                (
                                    "checkpoints",
                                    Json::from(s.checkpoints.load(Ordering::Relaxed)),
                                ),
                                ("spills", Json::from(s.spills.load(Ordering::Relaxed))),
                                (
                                    "segment_lookups",
                                    Json::from(s.segment_lookups.load(Ordering::Relaxed)),
                                ),
                                (
                                    "recovery_ms",
                                    Json::from(s.recovery_ms.load(Ordering::Relaxed)),
                                ),
                                (
                                    "replayed_records",
                                    Json::from(s.replayed_records.load(Ordering::Relaxed)),
                                ),
                            ])
                        } else {
                            Json::Null
                        }
                    }),
                    ("reader_pool", {
                        Json::obj(vec![
                            ("swaps", Json::from(self.snapshot.swaps())),
                            ("active_pins", Json::from(self.snapshot.active_pins())),
                        ])
                    }),
                    ("reactor", {
                        let r = &self.metrics.reactor;
                        if r.is_enabled() {
                            Json::obj(vec![
                                ("reactors", Json::from(r.reactors.load(Ordering::Relaxed))),
                                ("events", Json::from(r.events.load(Ordering::Relaxed))),
                                (
                                    "state_transitions",
                                    Json::from(r.state_transitions.load(Ordering::Relaxed)),
                                ),
                                ("accepted", Json::from(r.accepted.load(Ordering::Relaxed))),
                                (
                                    "active_connections",
                                    Json::from(r.active_connections.load(Ordering::Relaxed)),
                                ),
                                (
                                    "shed_connections",
                                    Json::from(r.shed_connections.load(Ordering::Relaxed)),
                                ),
                                ("polls", Json::from(r.poll.requests.load(Ordering::Relaxed))),
                                (
                                    "poll_p50_us",
                                    r.poll
                                        .quantile_micros(0.50)
                                        .map(Json::from)
                                        .unwrap_or(Json::Null),
                                ),
                                (
                                    "poll_p99_us",
                                    r.poll
                                        .quantile_micros(0.99)
                                        .map(Json::from)
                                        .unwrap_or(Json::Null),
                                ),
                            ])
                        } else {
                            Json::Null
                        }
                    }),
                    ("query", {
                        let q = &self.metrics.query;
                        if q.is_enabled() {
                            let counters = self.plans.counters();
                            Json::obj(vec![
                                ("requests", Json::from(q.requests.load(Ordering::Relaxed))),
                                (
                                    "parse_errors",
                                    Json::from(q.parse_errors.load(Ordering::Relaxed)),
                                ),
                                (
                                    "plans",
                                    Json::obj(
                                        q.plan_report()
                                            .into_iter()
                                            .map(|(name, count)| (name, Json::from(count)))
                                            .collect(),
                                    ),
                                ),
                                (
                                    "plan_cache",
                                    Json::obj(vec![
                                        ("entries", Json::from(self.plans.len() as u64)),
                                        ("hits", Json::from(counters.hits)),
                                        ("misses", Json::from(counters.misses)),
                                        ("evictions", Json::from(counters.evictions)),
                                        ("invalidations", Json::from(counters.invalidations)),
                                    ]),
                                ),
                                ("approx", {
                                    let (requests, sketch_answers, exact_fallbacks) =
                                        q.approx_report();
                                    Json::obj(vec![
                                        ("requests", Json::from(requests)),
                                        ("sketch_answers", Json::from(sketch_answers)),
                                        ("exact_fallbacks", Json::from(exact_fallbacks)),
                                    ])
                                }),
                            ])
                        } else {
                            Json::Null
                        }
                    }),
                ])
            }
            Request::Hello { version } => ok_response(vec![
                ("version", Json::from(negotiate_version(*version))),
                ("generation", Json::from(snap.generation())),
                ("stale", Json::Bool(stale)),
            ]),
            Request::Ping => ok_response(vec![
                ("pong", Json::Bool(true)),
                ("generation", Json::from(snap.generation())),
                ("stale", Json::Bool(stale)),
            ]),
            Request::Ingest { .. } => {
                // Reached only when no builder is attached (e.g. a
                // static snapshot served from a file).
                err_response("this server has no ingest pipeline")
            }
            Request::Shutdown => ok_response(vec![("stopping", Json::Bool(true))]),
        }
    }
}

fn endpoint_of(request: &Request) -> Option<Endpoint> {
    Some(match request {
        Request::Support { .. } => Endpoint::Support,
        Request::TopK { .. } => Endpoint::TopK,
        Request::Extensions { .. } => Endpoint::Extensions,
        Request::Recommend { .. } => Endpoint::Recommend,
        Request::Query { .. } => Endpoint::Query,
        Request::Stats => Endpoint::Stats,
        Request::Ingest { .. } => Endpoint::Ingest,
        Request::Ping => Endpoint::Ping,
        Request::Hello { .. } | Request::Shutdown => return None,
    })
}

/// Which endpoint, if the request's response may be cached. Cacheable ⇔
/// a pure function of (generation, request).
/// Rewrites `cache_hit` to `true` in a cached `query` payload.
fn mark_response_cache_hit(payload: String) -> String {
    match Json::parse(&payload) {
        Ok(Json::Obj(mut pairs)) => {
            for (key, value) in &mut pairs {
                if key == "cache_hit" {
                    *value = Json::Bool(true);
                }
            }
            Json::Obj(pairs).to_string()
        }
        _ => payload,
    }
}

fn endpoint_cacheable(request: &Request) -> Option<Endpoint> {
    match request {
        Request::Support { .. } => Some(Endpoint::Support),
        Request::TopK { .. } => Some(Endpoint::TopK),
        Request::Extensions { .. } => Some(Endpoint::Extensions),
        Request::Recommend { .. } => Some(Endpoint::Recommend),
        Request::Query { .. } => Some(Endpoint::Query),
        _ => None,
    }
}

/// Renders a query result set as the `rows` response field.
fn rows_json(rows: &plt_query::Rows) -> Json {
    fn items_json(itemset: &plt_core::item::Itemset) -> Json {
        Json::Arr(
            itemset
                .items()
                .iter()
                .map(|&i| Json::from(i as u64))
                .collect(),
        )
    }
    match rows {
        plt_query::Rows::Support {
            items,
            support,
            frequent,
        } => Json::Arr(vec![Json::obj(vec![
            (
                "items",
                Json::Arr(items.iter().map(|&i| Json::from(i as u64)).collect()),
            ),
            ("support", Json::from(*support)),
            ("frequent", Json::Bool(*frequent)),
        ])]),
        plt_query::Rows::Itemsets(rows) => Json::Arr(
            rows.iter()
                .map(|(itemset, support)| {
                    Json::obj(vec![
                        ("items", items_json(itemset)),
                        ("support", Json::from(*support)),
                    ])
                })
                .collect(),
        ),
        plt_query::Rows::Rules(rules) => Json::Arr(
            rules
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("antecedent", items_json(&r.antecedent)),
                        ("consequent", items_json(&r.consequent)),
                        ("support", Json::from(r.support)),
                        ("confidence", Json::from(r.confidence)),
                        ("lift", Json::from(r.lift)),
                    ])
                })
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::{ConditionalMiner, Miner};
    use plt_rules::RuleConfig;

    fn engine() -> Engine {
        let db = vec![
            vec![0, 1, 2],
            vec![0, 1, 2],
            vec![0, 1, 2, 3],
            vec![0, 1, 3, 4],
            vec![1, 2, 3],
            vec![2, 3, 5],
        ];
        let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db, 2);
        Engine::new(Snapshot::build(1, plt, &result, RuleConfig::default()))
    }

    #[test]
    fn support_responses_are_correct_json() {
        let engine = engine();
        let response = engine.handle(&Request::Support {
            items: vec![0, 1, 2],
        });
        let v = Json::parse(&response).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("support").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("frequent").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("source").unwrap().as_str(), Some("index"));
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let engine = engine();
        let req = Request::TopK { k: 5, min_size: 1 };
        let first = engine.handle(&req);
        let second = engine.handle(&req);
        assert_eq!(first, second);
        let stats = engine.metrics().endpoint(Endpoint::TopK);
        assert_eq!(stats.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(stats.cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn publish_swaps_generation_and_clears_cache() {
        let engine = engine();
        let req = Request::Support { items: vec![1] };
        engine.handle(&req);

        // New generation over a different window.
        let db2 = vec![vec![7, 8], vec![7, 8], vec![7, 9]];
        let plt = construct(&db2, 2, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db2, 2);
        engine.publish(Arc::new(Snapshot::build(
            2,
            plt,
            &result,
            RuleConfig::default(),
        )));

        let response = engine.handle(&req);
        let v = Json::parse(&response).unwrap();
        assert_eq!(v.get("generation").unwrap().as_u64(), Some(2));
        // Old answer (support of item 1 = 5) must not leak from cache.
        assert_eq!(v.get("support").unwrap().as_u64(), Some(0));
        assert_eq!(engine.metrics().generation.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn readers_see_consistent_snapshots_during_publishes() {
        let engine = Arc::new(engine());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            // Writer: republish generations 2..=20.
            {
                let engine = engine.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    for generation in 2..=20 {
                        let db = vec![vec![0, 1], vec![0, 1], vec![0, 2]];
                        let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
                        let result = ConditionalMiner::default().mine(&db, 2);
                        engine.publish(Arc::new(Snapshot::build(
                            generation,
                            plt,
                            &result,
                            RuleConfig::default(),
                        )));
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
            // Readers: every response must be internally consistent —
            // parseable, ok, and from *some* complete generation.
            for _ in 0..3 {
                let engine = engine.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let response = engine.handle(&Request::Support { items: vec![0] });
                        let v = Json::parse(&response).unwrap();
                        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
                        let g = v.get("generation").unwrap().as_u64().unwrap();
                        assert!((1..=20).contains(&g));
                    }
                });
            }
        });
    }

    #[test]
    fn degradation_is_surfaced_and_cleared_by_publish() {
        let engine = engine();
        let req = Request::Support { items: vec![0] };

        // Fresh: responses say stale=false.
        let v = Json::parse(&engine.handle(&req)).unwrap();
        assert_eq!(v.get("stale").unwrap().as_bool(), Some(false));
        assert_eq!(engine.state(), ServingState::Fresh);

        // A failed rebuild: the cached fresh answer must not leak, the
        // same (still correct) payload now carries stale=true, and STATS
        // counts the failure.
        engine.mark_rebuilding();
        assert_eq!(engine.state(), ServingState::Rebuilding);
        engine.mark_stale();
        assert!(engine.is_stale());
        let v = Json::parse(&engine.handle(&req)).unwrap();
        assert_eq!(v.get("stale").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("support").unwrap().as_u64(), Some(4));
        let stats = Json::parse(&engine.handle(&Request::Stats)).unwrap();
        assert_eq!(stats.get("stale").unwrap().as_bool(), Some(true));
        assert_eq!(stats.get("state").unwrap().as_str(), Some("stale"));
        assert_eq!(stats.get("builder_failures").unwrap().as_u64(), Some(1));

        // A successful publish recovers.
        let db = vec![vec![0, 1], vec![0, 1], vec![0, 2]];
        let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db, 2);
        engine.publish(Arc::new(Snapshot::build(
            2,
            plt,
            &result,
            RuleConfig::default(),
        )));
        assert_eq!(engine.state(), ServingState::Fresh);
        let v = Json::parse(&engine.handle(&req)).unwrap();
        assert_eq!(v.get("stale").unwrap().as_bool(), Some(false));
        // Failure count is cumulative, not reset by recovery.
        let stats = Json::parse(&engine.handle(&Request::Stats)).unwrap();
        assert_eq!(stats.get("builder_failures").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn query_endpoint_answers_with_plan_provenance() {
        let engine = engine();
        let response = engine.handle(&Request::Query {
            expr: "SUPPORT OF {0, 1, 2}".to_string(),
        });
        let v = Json::parse(&response).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("row_kind").unwrap().as_str(), Some("support"));
        assert_eq!(v.get("plan").unwrap().as_str(), Some("index_point"));
        assert_eq!(v.get("cache_hit").unwrap().as_bool(), Some(false));
        assert!(v.get("cost").unwrap().as_f64().unwrap() > 0.0);
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("support").unwrap().as_u64(), Some(3));
        assert_eq!(rows[0].get("frequent").unwrap().as_bool(), Some(true));

        // A small unfiltered top-k is cheaper via extension traversal
        // than a full scan, even on this tiny snapshot.
        let v = Json::parse(&engine.handle(&Request::Query {
            expr: "TOP 2".to_string(),
        }))
        .unwrap();
        assert_eq!(v.get("plan").unwrap().as_str(), Some("ext_traverse"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert!(
            rows[0].get("support").unwrap().as_u64() >= rows[1].get("support").unwrap().as_u64()
        );

        // Rules through the rule index.
        let v = Json::parse(&engine.handle(&Request::Query {
            expr: "RULES WHERE confidence >= 0.6 TOP 5".to_string(),
        }))
        .unwrap();
        assert_eq!(v.get("plan").unwrap().as_str(), Some("rule_scan"));
        assert_eq!(v.get("row_kind").unwrap().as_str(), Some("rules"));
        for row in v.get("rows").unwrap().as_arr().unwrap() {
            assert!(row.get("confidence").unwrap().as_f64().unwrap() >= 0.6);
        }
    }

    #[test]
    fn query_errors_are_typed_and_counted() {
        let engine = engine();
        let v = Json::parse(&engine.handle(&Request::Query {
            expr: "SUPPORT OF {}".to_string(),
        }))
        .unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("query:"));
        assert_eq!(
            engine.metrics().query.parse_errors.load(Ordering::Relaxed),
            1
        );
        // The engine still answers afterwards.
        let v = Json::parse(&engine.handle(&Request::Query {
            expr: "SUPPORT OF {0}".to_string(),
        }))
        .unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn query_plan_cache_hits_on_normalized_equivalents_and_publish_invalidates() {
        let engine = engine();
        let first = Json::parse(&engine.handle(&Request::Query {
            expr: "TOP 4 WHERE support >= 2 AND size >= 2".to_string(),
        }))
        .unwrap();
        assert_eq!(first.get("cache_hit").unwrap().as_bool(), Some(false));
        // Different spelling, same normalized AST — and a different
        // response-cache key, so this exercises the *plan* cache.
        let second = Json::parse(&engine.handle(&Request::Query {
            expr: "top 4 where size >= 2 and support >= 2".to_string(),
        }))
        .unwrap();
        assert_eq!(second.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            first.get("rows").unwrap().to_string(),
            second.get("rows").unwrap().to_string()
        );
        assert_eq!(engine.plan_cache().counters().hits, 1);

        // A publish moves the generation; the cached plan is stale.
        let db = vec![vec![0, 1], vec![0, 1], vec![0, 2]];
        let plt = construct(&db, 2, ConstructOptions::conditional()).unwrap();
        let result = ConditionalMiner::default().mine(&db, 2);
        engine.publish(Arc::new(Snapshot::build(
            2,
            plt,
            &result,
            RuleConfig::default(),
        )));
        let third = Json::parse(&engine.handle(&Request::Query {
            expr: "TOP 4 WHERE support >= 2 AND size >= 2".to_string(),
        }))
        .unwrap();
        assert_eq!(third.get("cache_hit").unwrap().as_bool(), Some(false));
        assert_eq!(third.get("generation").unwrap().as_u64(), Some(2));
        assert_eq!(engine.plan_cache().counters().invalidations, 1);
    }

    #[test]
    fn query_response_cache_hits_keep_provenance_and_flip_cache_hit() {
        let engine = engine();
        let req = Request::Query {
            expr: "SUPPORT OF {0, 1, 2}".to_string(),
        };
        let first = Json::parse(&engine.handle(&req)).unwrap();
        assert_eq!(first.get("cache_hit").unwrap().as_bool(), Some(false));
        // Same spelling again: served from the response cache, which
        // must still carry the plan provenance — and admit the hit.
        let second = Json::parse(&engine.handle(&req)).unwrap();
        assert_eq!(second.get("cache_hit").unwrap().as_bool(), Some(true));
        assert_eq!(
            second.get("plan").unwrap().as_str(),
            first.get("plan").unwrap().as_str()
        );
        assert!(second.get("cost").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            second.get("rows").unwrap().to_string(),
            first.get("rows").unwrap().to_string()
        );
    }

    #[test]
    fn stats_surface_query_block_after_first_query() {
        let engine = engine();
        // Before any query the block is hidden.
        let stats = Json::parse(&engine.handle(&Request::Stats)).unwrap();
        assert!(matches!(stats.get("query"), Some(Json::Null)));

        engine.handle(&Request::Query {
            expr: "MINE COND {3} TOP 2".to_string(),
        });
        engine.handle(&Request::Query {
            expr: "nonsense".to_string(),
        });
        let stats = Json::parse(&engine.handle(&Request::Stats)).unwrap();
        let q = stats.get("query").unwrap();
        assert_eq!(q.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(q.get("parse_errors").unwrap().as_u64(), Some(1));
        let plans = q.get("plans").unwrap();
        let mined: u64 = plans.get("ext_traverse").unwrap().as_u64().unwrap()
            + plans.get("cond_mine").unwrap().as_u64().unwrap();
        assert_eq!(mined, 1);
        let cache = q.get("plan_cache").unwrap();
        assert_eq!(cache.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn stats_reflect_traffic() {
        let engine = engine();
        engine.handle(&Request::Ping);
        engine.handle(&Request::Support { items: vec![1] });
        engine.handle(&Request::Support { items: vec![1] });
        let stats = engine.handle(&Request::Stats);
        let v = Json::parse(&stats).unwrap();
        let endpoints = v.get("endpoints").unwrap().as_arr().unwrap();
        let support = endpoints
            .iter()
            .find(|e| e.get("endpoint").unwrap().as_str() == Some("support"))
            .unwrap();
        assert_eq!(support.get("requests").unwrap().as_u64(), Some(2));
        assert_eq!(support.get("cache_hits").unwrap().as_u64(), Some(1));
        assert!(support.get("p50_us").unwrap().as_u64().is_some());
    }
}
