//! IBM-Quest-style sparse transaction generator.
//!
//! Follows the synthetic-data procedure of Agrawal & Srikant, *Fast
//! Algorithms for Mining Association Rules* (VLDB'94, §2.4) — the paper's
//! reference \[2\] and the source of the `T10.I4.D100K` naming convention:
//!
//! 1. Build `num_patterns` "potentially large" itemsets. Each pattern's
//!    size is Poisson-distributed around `avg_pattern_len`; a fraction of
//!    its items (exponentially distributed around `correlation`) is reused
//!    from the previous pattern, the rest drawn uniformly. Each pattern
//!    receives an exponentially distributed weight (normalised to a
//!    probability) and a corruption level from a clipped normal.
//! 2. Each transaction's size is Poisson-distributed around
//!    `avg_transaction_len`. The transaction is filled by repeatedly
//!    picking a pattern by weight and inserting it, *corrupted*: items are
//!    dropped from the pattern while a uniform draw stays below the
//!    pattern's corruption level. A pattern that would overflow the
//!    transaction is inserted anyway half the time and deferred otherwise,
//!    as in the original description.
//!
//! The substitution note for DESIGN.md: the original IBM generator binary
//! is not distributable; this re-implementation preserves the statistical
//! structure (pattern pool, weights, correlation, corruption) that gives
//! Quest data its characteristic long tail of item frequencies and
//! overlapping frequent itemsets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::{clipped_normal, exponential, poisson};
use crate::transaction::{Item, TransactionDb};

/// Parameters of the Quest generator (`T{avg_transaction_len}.
/// I{avg_pattern_len}.D{num_transactions}` in the literature's naming).
#[derive(Debug, Clone, PartialEq)]
pub struct QuestConfig {
    /// `|D|` — number of transactions to generate.
    pub num_transactions: usize,
    /// `|T|` — average transaction length (Poisson mean).
    pub avg_transaction_len: f64,
    /// `|I|` — average length of the potentially large itemsets.
    pub avg_pattern_len: f64,
    /// `|L|` — size of the pattern pool (2000 in the original).
    pub num_patterns: usize,
    /// `N` — size of the item universe (1000 in the original runs here;
    /// 10 000 in the VLDB'94 paper).
    pub num_items: u32,
    /// Mean fraction of a pattern shared with its predecessor (0.5 in the
    /// original).
    pub correlation: f64,
    /// Mean corruption level (0.5 in the original).
    pub corruption_mean: f64,
    /// RNG seed; same seed → same database.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_transactions: 10_000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 500,
            num_items: 1_000,
            correlation: 0.5,
            corruption_mean: 0.5,
            seed: 0x9e37_79b9,
        }
    }
}

impl QuestConfig {
    /// The `T10.I4` defaults scaled to `n` transactions.
    pub fn t10i4(n: usize) -> Self {
        QuestConfig {
            num_transactions: n,
            ..Default::default()
        }
    }

    /// A smaller, denser variant (`T5.I2`, 100 items) for fast tests.
    pub fn t5i2(n: usize) -> Self {
        QuestConfig {
            num_transactions: n,
            avg_transaction_len: 5.0,
            avg_pattern_len: 2.0,
            num_patterns: 50,
            num_items: 100,
            ..Default::default()
        }
    }

    /// Conventional dataset label, e.g. `T10.I4.D10000`.
    pub fn label(&self) -> String {
        format!(
            "T{}.I{}.D{}",
            self.avg_transaction_len as u64, self.avg_pattern_len as u64, self.num_transactions
        )
    }
}

/// One potentially large itemset with its pick weight and corruption level.
#[derive(Debug, Clone)]
struct Pattern {
    items: Vec<Item>,
    /// Cumulative probability up to and including this pattern.
    cum_weight: f64,
    corruption: f64,
}

/// The generator; construct once, then [`generate`](QuestGenerator::generate).
///
/// # Examples
///
/// ```
/// use plt_data::{QuestConfig, QuestGenerator};
///
/// let db = QuestGenerator::new(QuestConfig::t5i2(100)).generate();
/// assert_eq!(db.len(), 100);
/// // Deterministic per seed:
/// let again = QuestGenerator::new(QuestConfig::t5i2(100)).generate();
/// assert_eq!(db, again);
/// ```
#[derive(Debug, Clone)]
pub struct QuestGenerator {
    config: QuestConfig,
    patterns: Vec<Pattern>,
}

impl QuestGenerator {
    /// Builds the pattern pool for a configuration.
    pub fn new(config: QuestConfig) -> QuestGenerator {
        assert!(config.num_items >= 2, "need at least 2 items");
        assert!(config.num_patterns >= 1, "need at least 1 pattern");
        assert!(config.avg_pattern_len >= 1.0 && config.avg_transaction_len >= 1.0);
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut patterns: Vec<Pattern> = Vec::with_capacity(config.num_patterns);
        let mut weights: Vec<f64> = Vec::with_capacity(config.num_patterns);
        let mut prev: Vec<Item> = Vec::new();
        for _ in 0..config.num_patterns {
            let len = poisson(&mut rng, config.avg_pattern_len - 1.0) + 1;
            let mut items: Vec<Item> = Vec::with_capacity(len);
            // Fraction of items reused from the previous pattern.
            let reuse_frac = exponential(&mut rng, config.correlation).min(1.0);
            let reuse = ((len as f64) * reuse_frac).round() as usize;
            let reuse = reuse.min(prev.len());
            for _ in 0..reuse {
                let pick = prev[rng.gen_range(0..prev.len())];
                if !items.contains(&pick) {
                    items.push(pick);
                }
            }
            while items.len() < len {
                let pick = rng.gen_range(0..config.num_items);
                if !items.contains(&pick) {
                    items.push(pick);
                }
            }
            items.sort_unstable();
            weights.push(exponential(&mut rng, 1.0));
            let corruption = clipped_normal(&mut rng, config.corruption_mean, 0.1, 0.0, 1.0);
            prev = items.clone();
            patterns.push(Pattern {
                items,
                cum_weight: 0.0,
                corruption,
            });
        }
        // Normalise weights into a cumulative distribution.
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for (p, w) in patterns.iter_mut().zip(weights) {
            acc += w / total;
            p.cum_weight = acc;
        }
        patterns.last_mut().expect("non-empty pool").cum_weight = 1.0;
        QuestGenerator { config, patterns }
    }

    /// The configuration in use.
    pub fn config(&self) -> &QuestConfig {
        &self.config
    }

    /// Picks a pattern index by weight.
    fn pick_pattern(&self, rng: &mut SmallRng) -> usize {
        let x: f64 = rng.gen();
        self.patterns
            .partition_point(|p| p.cum_weight < x)
            .min(self.patterns.len() - 1)
    }

    /// Generates the full database.
    pub fn generate(&self) -> TransactionDb {
        let mut rng = SmallRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut transactions = Vec::with_capacity(self.config.num_transactions);
        let mut scratch: Vec<Item> = Vec::new();
        for _ in 0..self.config.num_transactions {
            let target = poisson(&mut rng, self.config.avg_transaction_len - 1.0) + 1;
            let mut t: Vec<Item> = Vec::with_capacity(target + 4);
            // Guard against pathological configs where corruption keeps
            // every insertion empty: bail after a bounded number of picks.
            let mut picks = 0;
            while t.len() < target && picks < 8 * target + 16 {
                picks += 1;
                let p = &self.patterns[self.pick_pattern(&mut rng)];
                scratch.clear();
                scratch.extend_from_slice(&p.items);
                // Corrupt: drop items while a uniform draw is below the
                // pattern's corruption level.
                while !scratch.is_empty() && rng.gen::<f64>() < p.corruption {
                    let i = rng.gen_range(0..scratch.len());
                    scratch.swap_remove(i);
                }
                if scratch.is_empty() {
                    continue;
                }
                // If the (corrupted) pattern overflows the target size,
                // keep it anyway half the time, defer it otherwise.
                if t.len() + scratch.len() > target && rng.gen::<bool>() && !t.is_empty() {
                    continue;
                }
                t.extend_from_slice(&scratch);
            }
            t.sort_unstable();
            t.dedup();
            transactions.push(t);
        }
        TransactionDb::from_sorted(transactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DbStats;

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = QuestConfig::t5i2(200);
        let a = QuestGenerator::new(cfg.clone()).generate();
        let b = QuestGenerator::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = QuestConfig::t5i2(200);
        let a = QuestGenerator::new(cfg.clone()).generate();
        cfg.seed = 1234;
        let b = QuestGenerator::new(cfg).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn sizes_track_configuration() {
        let cfg = QuestConfig::t10i4(2_000);
        let db = QuestGenerator::new(cfg).generate();
        let s = DbStats::of(&db);
        assert_eq!(s.num_transactions, 2_000);
        // Average length should be in the right ballpark of |T| = 10
        // (corruption and dedup pull it around somewhat).
        assert!(
            s.avg_len > 5.0 && s.avg_len < 16.0,
            "avg length {}",
            s.avg_len
        );
        assert!(s.num_items > 100, "should touch a wide item universe");
    }

    #[test]
    fn transactions_are_sorted_sets() {
        let db = QuestGenerator::new(QuestConfig::t5i2(300)).generate();
        for t in db.transactions() {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "unsorted {t:?}");
        }
    }

    #[test]
    fn data_is_minable_and_correlated() {
        // The pattern pool must induce *some* frequent 2-itemsets at 1%
        // support — that's the entire point of Quest data over uniform
        // noise.
        let db = QuestGenerator::new(QuestConfig::t5i2(1_000)).generate();
        let min_sup = 10u64;
        let items = db.items();
        let mut found_pair = false;
        'outer: for (i, &a) in items.iter().enumerate() {
            for &b in &items[i + 1..] {
                if db.support_by_scan(&[a, b]) >= min_sup {
                    found_pair = true;
                    break 'outer;
                }
            }
        }
        assert!(found_pair, "expected at least one frequent pair at 1%");
    }

    #[test]
    fn label_formats_conventionally() {
        assert_eq!(QuestConfig::t10i4(100_000).label(), "T10.I4.D100000");
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_universe() {
        QuestGenerator::new(QuestConfig {
            num_items: 1,
            ..Default::default()
        });
    }
}
