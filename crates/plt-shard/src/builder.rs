//! `MinerBuilder` — the one configuration path for every PLT miner.
//!
//! `plt-cli` and `plt-serve` used to construct miners through scattered
//! per-type constructors (`ConditionalMiner::with_engine`,
//! `TopDownMiner::with_policy`, …). The builder replaces those call sites:
//! pick a [`MineStrategy`], tune the knobs, and take the result as a
//! [`Mine`] trait object (PLT-level), a [`Miner`] (transaction-level), or
//! a full [`ShardedPipeline`] for incremental workloads.

use plt_core::error::Result;
use plt_core::item::{Item, Support};
use plt_core::ranking::RankPolicy;
use plt_core::{CondEngine, ConditionalMiner, HybridMiner, Mine, Miner, TopDownMiner};
use plt_parallel::ParallelPltMiner;

use crate::pipeline::{ShardConfig, ShardedPipeline, DEFAULT_SHARD_COUNT};

/// Which mining strategy a built miner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MineStrategy {
    /// Bottom-up conditional-database mining (the paper's Figure 5 flow).
    #[default]
    Conditional,
    /// Top-down propagation over the full subset lattice.
    TopDown,
    /// Conditional mining with a top-down fallback for small groups.
    Hybrid,
    /// Per-item parallel conditional mining via rayon.
    Parallel,
}

impl MineStrategy {
    /// Parses a strategy name as used by `plt-cli` (`conditional`,
    /// `topdown`, `hybrid`, `parallel`).
    pub fn parse(name: &str) -> Option<MineStrategy> {
        match name {
            "conditional" => Some(MineStrategy::Conditional),
            "topdown" => Some(MineStrategy::TopDown),
            "hybrid" => Some(MineStrategy::Hybrid),
            "parallel" => Some(MineStrategy::Parallel),
            _ => None,
        }
    }

    /// The canonical name (inverse of [`parse`](Self::parse)).
    pub fn name(&self) -> &'static str {
        match self {
            MineStrategy::Conditional => "conditional",
            MineStrategy::TopDown => "topdown",
            MineStrategy::Hybrid => "hybrid",
            MineStrategy::Parallel => "parallel",
        }
    }
}

/// Builder for every PLT miner configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerBuilder {
    strategy: MineStrategy,
    engine: CondEngine,
    rank_policy: RankPolicy,
    min_support: Support,
    shard_count: usize,
    kernel: Option<plt_core::kernels::Backend>,
}

impl Default for MinerBuilder {
    fn default() -> MinerBuilder {
        MinerBuilder {
            strategy: MineStrategy::Conditional,
            engine: CondEngine::Arena,
            rank_policy: RankPolicy::Lexicographic,
            min_support: 2,
            shard_count: DEFAULT_SHARD_COUNT,
            kernel: None,
        }
    }
}

impl MinerBuilder {
    /// Starts from the defaults: conditional strategy, arena engine,
    /// lexicographic ranking, minimum support 2, 16 shards.
    pub fn new() -> MinerBuilder {
        MinerBuilder::default()
    }

    /// Selects the mining strategy.
    pub fn strategy(mut self, strategy: MineStrategy) -> MinerBuilder {
        self.strategy = strategy;
        self
    }

    /// Selects the conditional-mining engine (arena or map).
    pub fn engine(mut self, engine: CondEngine) -> MinerBuilder {
        self.engine = engine;
        self
    }

    /// Selects the item-ordering policy.
    pub fn rank_policy(mut self, rank_policy: RankPolicy) -> MinerBuilder {
        self.rank_policy = rank_policy;
        self
    }

    /// Sets the absolute minimum support (used by [`build_miner`]'s
    /// transaction-level view and by [`build_pipeline`]).
    ///
    /// [`build_miner`]: Self::build_miner
    /// [`build_pipeline`]: Self::build_pipeline
    pub fn min_support(mut self, min_support: Support) -> MinerBuilder {
        self.min_support = min_support;
        self
    }

    /// Sets the shard count for [`build_pipeline`](Self::build_pipeline).
    pub fn shard_count(mut self, shard_count: usize) -> MinerBuilder {
        self.shard_count = shard_count;
        self
    }

    /// Pins the kernel backend the parallel strategy's workers use
    /// (`None` = inherit the process-global/auto selection). Sequential
    /// strategies read the ambient selection and ignore this knob.
    pub fn kernel(mut self, kernel: Option<plt_core::kernels::Backend>) -> MinerBuilder {
        self.kernel = kernel;
        self
    }

    /// The PLT-level miner as a [`Mine`] trait object.
    pub fn build(&self) -> Box<dyn Mine> {
        match self.strategy {
            MineStrategy::Conditional => Box::new(ConditionalMiner {
                rank_policy: self.rank_policy,
                engine: self.engine,
            }),
            MineStrategy::TopDown => Box::new(TopDownMiner {
                rank_policy: self.rank_policy,
                ..TopDownMiner::default()
            }),
            MineStrategy::Hybrid => Box::new(HybridMiner {
                rank_policy: self.rank_policy,
                ..HybridMiner::default()
            }),
            MineStrategy::Parallel => Box::new(ParallelPltMiner {
                rank_policy: self.rank_policy,
                engine: self.engine,
                kernel: self.kernel,
            }),
        }
    }

    /// The transaction-level view of the same configuration as a [`Miner`]
    /// trait object (takes `(&[Vec<Item>], min_support)` directly).
    pub fn build_miner(&self) -> Box<dyn Miner> {
        match self.strategy {
            MineStrategy::Conditional => Box::new(ConditionalMiner {
                rank_policy: self.rank_policy,
                engine: self.engine,
            }),
            MineStrategy::TopDown => Box::new(TopDownMiner {
                rank_policy: self.rank_policy,
                ..TopDownMiner::default()
            }),
            MineStrategy::Hybrid => Box::new(HybridMiner {
                rank_policy: self.rank_policy,
                ..HybridMiner::default()
            }),
            MineStrategy::Parallel => Box::new(ParallelPltMiner {
                rank_policy: self.rank_policy,
                engine: self.engine,
                kernel: self.kernel,
            }),
        }
    }

    /// The pipeline-side configuration this builder describes.
    pub fn shard_config(&self, capacity: Option<usize>) -> ShardConfig {
        ShardConfig {
            shard_count: self.shard_count,
            min_support: self.min_support,
            rank_policy: self.rank_policy,
            engine: self.engine,
            capacity,
            defer_merge: false,
        }
    }

    /// A [`ShardedPipeline`] over `initial`, mined and ready to serve.
    pub fn build_pipeline(
        &self,
        initial: &[Vec<Item>],
        capacity: Option<usize>,
    ) -> Result<ShardedPipeline> {
        ShardedPipeline::new(initial, self.shard_config(capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::ranking::ItemRanking;
    use plt_core::Plt;

    fn sample() -> Vec<Vec<Item>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![2, 3],
            vec![1, 3],
            vec![1, 2, 3],
        ]
    }

    fn sample_plt(min_support: Support) -> Plt {
        let ranking = ItemRanking::scan(&sample(), min_support, RankPolicy::Lexicographic);
        let mut plt = Plt::new(ranking, min_support).unwrap();
        for t in sample() {
            plt.insert_transaction(&t).unwrap();
        }
        plt
    }

    #[test]
    fn all_strategies_agree_through_the_builder() {
        let plt = sample_plt(2);
        let reference = MinerBuilder::new().build().mine_plt(&plt);
        for strategy in [
            MineStrategy::TopDown,
            MineStrategy::Hybrid,
            MineStrategy::Parallel,
        ] {
            let miner = MinerBuilder::new().strategy(strategy).build();
            let got = miner.mine_plt(&plt);
            assert_eq!(
                reference.sorted(),
                got.sorted(),
                "{} disagreed with conditional",
                strategy.name()
            );
        }
    }

    #[test]
    fn transaction_level_view_agrees_with_plt_level() {
        let plt_level = MinerBuilder::new().build().mine_plt(&sample_plt(2));
        let tx_level = MinerBuilder::new()
            .min_support(2)
            .build_miner()
            .mine(&sample(), 2);
        assert_eq!(plt_level.sorted(), tx_level.sorted());
    }

    #[test]
    fn strategy_names_round_trip() {
        for strategy in [
            MineStrategy::Conditional,
            MineStrategy::TopDown,
            MineStrategy::Hybrid,
            MineStrategy::Parallel,
        ] {
            assert_eq!(MineStrategy::parse(strategy.name()), Some(strategy));
        }
        assert_eq!(MineStrategy::parse("bogus"), None);
    }

    #[test]
    fn builder_pipeline_respects_shard_count() {
        let pipeline = MinerBuilder::new()
            .min_support(2)
            .shard_count(2)
            .build_pipeline(&sample(), None)
            .unwrap();
        assert_eq!(pipeline.shard_count(), 2);
    }
}
