//! # plt-serve — online itemset query service over mined PLT results
//!
//! Mining answers "what is frequent?" once; applications then ask the
//! result thousands of point questions per second — supports of given
//! baskets, best extensions, recommendations. This crate serves those
//! questions from an immutable, read-optimized [`Snapshot`] index while
//! a background [`builder`] re-mines a sliding window and republishes.
//!
//! The layers, bottom up:
//!
//! * [`snapshot`] — the index. Frequent itemsets are keyed by their
//!   **canonical position vector** (Lemma 4.1.2: a position vector
//!   uniquely identifies its itemset), so a support probe is one hash
//!   lookup; Lemma 4.1.3's level-down subsets, inverted, give an
//!   extension index; infrequent queries fall back to the exact
//!   [`SupportOracle`](plt_core::SupportOracle).
//! * [`engine`] — the concurrency shell: `RwLock<Arc<Snapshot>>` held
//!   only for an `Arc` clone per query (readers never wait on mining),
//!   a sharded LRU [`cache`] of rendered responses, per-endpoint
//!   [`metrics`] with p50/p99 latency.
//! * [`builder`] — a background thread folding `INGEST` batches into a
//!   [`ShardedPipeline`](plt_shard::ShardedPipeline): only the rank-range
//!   shards a batch touches are re-mined before a fresh snapshot is
//!   published (one pointer swap; cache cleared).
//! * [`server`]/[`client`] — a TCP wire: length-prefixed JSON frames
//!   ([`proto`]), N acceptor threads sharing one listener, a thread per
//!   connection. `std::net` only; no async runtime. Connections carry
//!   read/write deadlines, a max-frame bound, and a capacity cap; the
//!   client retries idempotent requests with capped backoff.
//! * [`fault`] — seed-deterministic fault injection (torn/oversized
//!   frames, short I/O, stalls, builder panics) threaded through all of
//!   the above for reproducible chaos testing. A failed rebuild degrades
//!   the service to its last good snapshot (`stale: true` on responses)
//!   instead of killing it.
//!
//! ## Quick start
//!
//! ```
//! use plt_serve::builder::{bootstrap, BuilderConfig};
//! use plt_serve::client::Client;
//! use plt_serve::server::{serve, ServerConfig};
//!
//! let warmup = vec![vec![1, 2], vec![1, 2], vec![1, 3]];
//! let config = BuilderConfig { min_support: 2, ..BuilderConfig::default() };
//! let (engine, builder) = bootstrap(&warmup, config).unwrap();
//! let handle = serve("127.0.0.1:0", engine, Some(builder.queue()),
//!                    ServerConfig { acceptors: 1, ..ServerConfig::default() }).unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! assert_eq!(client.support(&[1, 2]).unwrap().support, 2);
//! client.shutdown().unwrap();
//! handle.join();
//! builder.stop();
//! ```

pub mod builder;
pub mod cache;
pub mod client;
pub mod decode;
pub mod engine;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod proto;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod reader_pool;
pub mod server;
pub mod snapshot;

pub use builder::{bootstrap, BuilderConfig, BuilderHandle, IngestQueue, RebuildMode};
pub use client::{Client, ClientConfig, ClientError, RetryPolicy, SupportReply};
pub use decode::FrameDecoder;
pub use engine::{Engine, ServingState};
pub use fault::{FaultConfig, FaultEvent, FaultPlan, Site};
pub use plt_approx::{SampledRebuild, SketchConfig};
pub use proto::{negotiate_version, Request, MAX_PROTOCOL_VERSION};
pub use reader_pool::{ReadGuard, ReaderCache, ReaderPool};
pub use server::{serve, ServerConfig, ServerHandle, ServerModel};
pub use snapshot::{Recommendation, Snapshot, SupportAnswer, SupportSource};

#[cfg(test)]
mod prop_tests {
    //! Property: snapshot answers agree with the miner, whatever the
    //! database.

    use plt_core::construct::{construct, ConstructOptions};
    use plt_core::miner::{BruteForceMiner, Miner};
    use plt_core::ConditionalMiner;
    use plt_rules::RuleConfig;
    use proptest::prelude::*;

    use crate::snapshot::Snapshot;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Every lookup — frequent (index path) or not (oracle path) —
        /// returns the true support, and `frequent` matches the
        /// threshold. Itemsets naming an item that was infrequent at
        /// construction have no rank in the PLT and report 0 (the
        /// documented `SupportOracle` semantics).
        #[test]
        fn prop_snapshot_agrees_with_miner(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..8, 1..5),
                1..25,
            ),
            queries in proptest::collection::vec(
                proptest::collection::btree_set(0u32..8, 1..4),
                1..12,
            ),
            min_support in 1u64..4,
        ) {
            let db: Vec<Vec<u32>> = db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
            let ranking = plt.ranking().clone();
            let result = ConditionalMiner::default().mine(&db, min_support);
            let snap = Snapshot::build(1, plt, &result, RuleConfig::default());
            let truth = BruteForceMiner.mine(&db, 1);
            for q in queries {
                let q: Vec<u32> = q.into_iter().collect();
                let all_ranked = q.iter().all(|&i| ranking.rank(i).is_some());
                let expect = if all_ranked {
                    truth.support(&q).unwrap_or(0)
                } else {
                    0
                };
                let got = snap.support(&q);
                prop_assert_eq!(got.support, expect, "support({:?})", &q);
                prop_assert_eq!(
                    got.frequent,
                    expect >= min_support,
                    "frequent({:?})", &q
                );
            }
        }

        /// The extension index is exactly the set of frequent 1-item
        /// supersets of each frequent itemset.
        #[test]
        fn prop_extensions_are_frequent_supersets(
            db in proptest::collection::vec(
                proptest::collection::btree_set(0u32..6, 1..5),
                1..20,
            ),
        ) {
            let db: Vec<Vec<u32>>= db.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let min_support = 2;
            let plt = construct(&db, min_support, ConstructOptions::conditional()).unwrap();
            let result = ConditionalMiner::default().mine(&db, min_support);
            let snap = Snapshot::build(1, plt, &result, RuleConfig::default());
            for (itemset, _) in result.iter() {
                let exts = snap.extensions(itemset.items(), usize::MAX);
                for (e, support) in exts {
                    prop_assert!(!itemset.contains(e));
                    let mut superset = itemset.items().to_vec();
                    superset.push(e);
                    prop_assert_eq!(
                        result.support(&superset),
                        Some(support),
                        "{:?} + {}", itemset, e
                    );
                }
            }
        }
    }
}
