//! X12 — conditional-engine comparison: the legacy map layout vs the
//! flat arena layout, sequential and parallel, across the three workload
//! shapes (sparse Quest, dense, power-law). The PLT is constructed once
//! per workload — construction is engine-independent — so the groups
//! measure the mining engines alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use plt_bench::datasets;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::{CondEngine, ConditionalMiner, Mine};
use plt_parallel::ParallelPltMiner;

fn bench(c: &mut Criterion) {
    let workloads: Vec<(&str, Vec<Vec<u32>>, u64)> = vec![
        ("sparse", datasets::sparse(2_000), 20),
        ("dense", datasets::dense(600, 16), 180),
        ("zipf", datasets::zipf(2_000, 1.1), 20),
    ];
    for (name, db, min_sup) in &workloads {
        let plt = construct(db, *min_sup, ConstructOptions::conditional()).unwrap();
        let mut group = c.benchmark_group(format!("x12/{name}"));
        group.sample_size(10);
        let engines = [("map", CondEngine::Map), ("arena", CondEngine::Arena)];
        for (label, engine) in engines {
            let miner = ConditionalMiner::with_engine(engine);
            group.bench_with_input(BenchmarkId::new("seq", label), &plt, |b, plt| {
                b.iter(|| miner.mine_plt(plt))
            });
            let par = ParallelPltMiner::with_engine(engine);
            group.bench_with_input(BenchmarkId::new("par", label), &plt, |b, plt| {
                b.iter(|| par.mine_plt(plt))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
