//! Dataset statistics: the numbers every FIM evaluation section reports
//! about its workloads (size, dimensionality, density).

use crate::transaction::TransactionDb;

/// Summary statistics of a transaction database.
#[derive(Debug, Clone, PartialEq)]
pub struct DbStats {
    /// Number of transactions, including empty ones.
    pub num_transactions: usize,
    /// Number of distinct items.
    pub num_items: usize,
    /// Total item occurrences.
    pub total_items: usize,
    /// Average transaction length.
    pub avg_len: f64,
    /// Longest transaction.
    pub max_len: usize,
    /// Shortest transaction.
    pub min_len: usize,
    /// Density = `avg_len / num_items`: the fraction of the item universe a
    /// typical transaction covers. Dense datasets (chess ≈ 0.49) favour the
    /// top-down approach; sparse ones (retail ≈ 0.0006) favour conditional.
    pub density: f64,
}

impl DbStats {
    /// Computes statistics over a database. An empty database yields zeros.
    pub fn of(db: &TransactionDb) -> DbStats {
        let num_transactions = db.len();
        let num_items = db.items().len();
        let total_items = db.total_items();
        let (mut max_len, mut min_len) = (0usize, usize::MAX);
        for t in db.transactions() {
            max_len = max_len.max(t.len());
            min_len = min_len.min(t.len());
        }
        if num_transactions == 0 {
            min_len = 0;
        }
        let avg_len = if num_transactions == 0 {
            0.0
        } else {
            total_items as f64 / num_transactions as f64
        };
        let density = if num_items == 0 {
            0.0
        } else {
            avg_len / num_items as f64
        };
        DbStats {
            num_transactions,
            num_items,
            total_items,
            avg_len,
            max_len,
            min_len,
            density,
        }
    }
}

impl std::fmt::Display for DbStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|D|={} items={} avg|T|={:.2} max|T|={} density={:.4}",
            self.num_transactions, self.num_items, self.avg_len, self.max_len, self.density
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_simple_db() {
        let db = TransactionDb::new(vec![vec![1, 2, 3], vec![1, 2], vec![4]]);
        let s = DbStats::of(&db);
        assert_eq!(s.num_transactions, 3);
        assert_eq!(s.num_items, 4);
        assert_eq!(s.total_items, 6);
        assert!((s.avg_len - 2.0).abs() < 1e-12);
        assert_eq!(s.max_len, 3);
        assert_eq!(s.min_len, 1);
        assert!((s.density - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_db() {
        let s = DbStats::of(&TransactionDb::default());
        assert_eq!(s.num_transactions, 0);
        assert_eq!(s.num_items, 0);
        assert_eq!(s.avg_len, 0.0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn empty_transactions_count_toward_min() {
        let db = TransactionDb::new(vec![vec![], vec![1, 2]]);
        let s = DbStats::of(&db);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.max_len, 2);
    }

    #[test]
    fn display_is_compact() {
        let db = TransactionDb::new(vec![vec![1, 2]]);
        let s = DbStats::of(&db).to_string();
        assert!(s.contains("|D|=1"));
        assert!(s.contains("density="));
    }
}
