//! Sharded LRU cache for rendered responses.
//!
//! Read endpoints are deterministic functions of (snapshot generation,
//! request), so the engine caches the rendered JSON string keyed by the
//! canonical request text. The map is split into shards, each behind its
//! own mutex, so concurrent readers on different shards never contend;
//! within a shard, recency is a monotone tick and eviction removes the
//! smallest tick (an `O(shard)` scan — shards are small by
//! construction, `capacity / shards` entries).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sharded least-recently-used string cache.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    tick: AtomicU64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, (u64, String)>,
}

impl ShardedCache {
    /// A cache with `shards` shards of `capacity / shards` entries each
    /// (at least one per shard). `shards` must be non-zero.
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        assert!(shards > 0, "cache needs at least one shard");
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: (capacity / shards).max(1),
            tick: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        // FNV-1a: stable across runs (unlike `RandomState`), cheap, and
        // good enough to spread protocol strings.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Fetches and refreshes recency.
    pub fn get(&self, key: &str) -> Option<String> {
        let mut shard = self.shard(key).lock().unwrap();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let (stamp, value) = shard.entries.get_mut(key)?;
        *stamp = tick;
        Some(value.clone())
    }

    /// Inserts, evicting the least-recently-used entry of the target
    /// shard when it is full.
    pub fn put(&self, key: String, value: String) {
        let mut shard = self.shard(&key).lock().unwrap();
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if shard.entries.len() >= self.per_shard && !shard.entries.contains_key(&key) {
            if let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&oldest);
            }
        }
        shard.entries.insert(key, (tick, value));
    }

    /// Drops every entry — called when a new snapshot is published,
    /// since cached responses embed the old generation's answers.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().entries.clear();
        }
    }

    /// Entries currently held, across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().entries.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip() {
        let cache = ShardedCache::new(64, 8);
        assert_eq!(cache.get("a"), None);
        cache.put("a".into(), "1".into());
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        cache.put("a".into(), "2".into());
        assert_eq!(cache.get("a").as_deref(), Some("2"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        // One shard of capacity 2 makes eviction order observable.
        let cache = ShardedCache::new(2, 1);
        cache.put("a".into(), "1".into());
        cache.put("b".into(), "2".into());
        cache.get("a"); // refresh a; b is now LRU
        cache.put("c".into(), "3".into());
        assert_eq!(cache.get("a").as_deref(), Some("1"));
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.get("c").as_deref(), Some("3"));
    }

    #[test]
    fn eviction_follows_exact_access_order() {
        // Fill a single shard, touch entries in a scrambled order, then
        // overflow one at a time: victims must fall out precisely in
        // last-touch order.
        let cache = ShardedCache::new(4, 1);
        for k in ["a", "b", "c", "d"] {
            cache.put(k.into(), k.to_uppercase());
        }
        // Recency (oldest → newest) becomes: b, d, a, c.
        cache.get("b");
        cache.get("d");
        cache.get("a");
        cache.get("c");

        cache.put("e".into(), "E".into());
        assert_eq!(cache.get("b"), None, "b was least recently touched");
        cache.put("f".into(), "F".into());
        assert_eq!(cache.get("d"), None, "then d");
        // a and c survive, plus the two newcomers.
        assert_eq!(cache.get("a").as_deref(), Some("A"));
        assert_eq!(cache.get("c").as_deref(), Some("C"));
        assert_eq!(cache.get("e").as_deref(), Some("E"));
        assert_eq!(cache.get("f").as_deref(), Some("F"));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn overwriting_a_present_key_never_evicts() {
        let cache = ShardedCache::new(2, 1);
        cache.put("a".into(), "1".into());
        cache.put("b".into(), "2".into());
        // Shard is full, but "a" is present: replace in place.
        cache.put("a".into(), "3".into());
        assert_eq!(cache.get("a").as_deref(), Some("3"));
        assert_eq!(cache.get("b").as_deref(), Some("2"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn put_refreshes_recency_like_get() {
        let cache = ShardedCache::new(2, 1);
        cache.put("a".into(), "1".into());
        cache.put("b".into(), "2".into());
        cache.put("a".into(), "1b".into()); // a is now the newest
        cache.put("c".into(), "3".into());
        assert_eq!(cache.get("b"), None, "b was LRU after a's re-put");
        assert_eq!(cache.get("a").as_deref(), Some("1b"));
    }

    #[test]
    fn clear_empties_all_shards() {
        let cache = ShardedCache::new(32, 4);
        for i in 0..20 {
            cache.put(format!("k{i}"), "v".into());
        }
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = std::sync::Arc::new(ShardedCache::new(128, 8));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("k{}", (t * 31 + i) % 50);
                        if cache.get(&key).is_none() {
                            cache.put(key, format!("{i}"));
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 128);
    }
}
