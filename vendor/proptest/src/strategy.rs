//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Marker returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a whole-domain default strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spanning sign and magnitude.
        let mantissa: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let exp = rng.gen_range(-60i32..60);
        mantissa * (exp as f64).exp2()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix small values (edge-prone) with full-width draws, as
                // the real crate's integer distribution does.
                match rng.next_u64() % 4 {
                    0 => (rng.next_u64() % 16) as $t,
                    1 => <$t>::MAX.wrapping_sub((rng.next_u64() % 16) as $t),
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
