//! Dirty-rank projections: per-item conditional databases restricted to a
//! marked rank set.
//!
//! Same single-pass formulation as `plt_parallel::projection` — vector `V`
//! with ranks `r_1 < … < r_k` contributes its prefix before `r_i` to item
//! `r_i`'s conditional database — but prefixes are only copied for ranks
//! the caller marked dirty. Clean ranks cost one flag test per occupied
//! position, so the projection pass itself scales with the dirty fraction
//! of the position mass, not the full database.

use plt_core::item::{Rank, Support};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;

/// One dirty rank's projection: support plus its conditional database in
/// flat storage (the layout the arena engine consumes directly).
#[derive(Debug, Clone, Default)]
pub(crate) struct Slot {
    pub(crate) support: Support,
    /// Contiguous position storage for every prefix in this database.
    positions: Vec<Rank>,
    /// `(offset, len, freq)` windows into `positions`.
    entries: Vec<(u32, u32, Support)>,
}

impl Slot {
    /// True when the rank has no conditional database (only prefixes of
    /// length ≥ 1 are stored).
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(positions, frequency)` windows — the shape
    /// [`plt_core::ArenaPool::mine_conditional`] consumes.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (&[Rank], Support)> + Clone + '_ {
        let positions = &self.positions;
        self.entries
            .iter()
            .map(move |&(off, len, freq)| (&positions[off as usize..(off + len) as usize], freq))
    }

    /// Materialises the database as owned vectors for the map engine.
    pub(crate) fn to_vectors(&self) -> Vec<(PositionVector, Support)> {
        self.iter()
            .map(|(p, f)| {
                (
                    PositionVector::from_positions(p.to_vec()).expect("stored positions are valid"),
                    f,
                )
            })
            .collect()
    }
}

/// Projects the marked ranks of `plt` in one pass. `marked` is indexed by
/// rank (index 0 unused); the returned slots are indexed by `rank − 1`,
/// with unmarked ranks left empty.
pub(crate) fn project_marked(plt: &Plt, marked: &[bool]) -> Vec<Slot> {
    let n = plt.ranking().len();
    let mut by_rank: Vec<Slot> = vec![Slot::default(); n];
    for (v, e) in plt.iter() {
        let positions = v.positions();
        let mut acc = 0;
        for (i, &p) in positions.iter().enumerate() {
            acc += p; // rank of the i-th item (Lemma 4.1.1)
            if !marked[acc as usize] {
                continue;
            }
            let slot = &mut by_rank[(acc - 1) as usize];
            slot.support += e.freq;
            if i > 0 {
                let off = slot.positions.len() as u32;
                slot.positions.extend_from_slice(&positions[..i]);
                slot.entries.push((off, i as u32, e.freq));
            }
        }
    }
    by_rank
}
