//! The FP-tree (Han, Pei & Yin, SIGMOD'00 §2).
//!
//! A prefix tree over transactions whose items are reordered by descending
//! frequency, with a header table threading same-item nodes into linked
//! lists ("node links"). Items are represented by their **order index**
//! (0 = most frequent); the miner maps back to real items at output time.
//!
//! Arena-based: nodes live in one `Vec`, links are `u32` indices — the
//! ownership-friendly encoding of a multi-parent-pointer tree in Rust.

use plt_core::item::Support;

/// Sentinel index for "no node".
pub const NIL: u32 = u32::MAX;

/// One FP-tree node.
#[derive(Debug, Clone)]
pub struct FpNode {
    /// Order index of the item (`NIL_ITEM` for the root).
    pub item: u32,
    /// Count of transactions through this node.
    pub count: Support,
    /// Parent node index (`NIL` for the root).
    pub parent: u32,
    /// Next node carrying the same item (header chain).
    pub next: u32,
    /// Children as `(item, node)` pairs sorted by item.
    children: Vec<(u32, u32)>,
}

/// Item value carried by the root node.
pub const NIL_ITEM: u32 = u32::MAX;

/// Header-table entry.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Total support of the item within this (conditional) tree.
    pub count: Support,
    /// First node of the item's node-link chain.
    pub head: u32,
}

/// An FP-tree with its header table.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    /// `headers[order_index]`; entries with `count == 0` are absent items.
    headers: Vec<Header>,
}

impl FpTree {
    /// Creates a tree with `num_items` header slots and just the root.
    pub fn new(num_items: usize) -> FpTree {
        FpTree {
            nodes: vec![FpNode {
                item: NIL_ITEM,
                count: 0,
                parent: NIL,
                next: NIL,
                children: Vec::new(),
            }],
            headers: vec![
                Header {
                    count: 0,
                    head: NIL
                };
                num_items
            ],
        }
    }

    /// Number of nodes including the root (the FP-tree size metric of
    /// experiment X6).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of header slots.
    pub fn num_items(&self) -> usize {
        self.headers.len()
    }

    /// Header of an item.
    pub fn header(&self, item: u32) -> Header {
        self.headers[item as usize]
    }

    /// Borrows a node.
    pub fn node(&self, idx: u32) -> &FpNode {
        &self.nodes[idx as usize]
    }

    /// Inserts a transaction whose items are **strictly increasing order
    /// indices** (i.e. already reordered by descending frequency), with a
    /// multiplicity (conditional pattern bases insert with counts).
    pub fn insert(&mut self, path: &[u32], count: Support) {
        debug_assert!(path.windows(2).all(|w| w[0] < w[1]));
        let mut cur = 0u32; // root
        for &item in path {
            let next = match self.nodes[cur as usize]
                .children
                .binary_search_by_key(&item, |&(i, _)| i)
            {
                Ok(pos) => self.nodes[cur as usize].children[pos].1,
                Err(pos) => {
                    let idx = self.nodes.len() as u32;
                    self.nodes.push(FpNode {
                        item,
                        count: 0,
                        parent: cur,
                        next: self.headers[item as usize].head,
                        children: Vec::new(),
                    });
                    self.headers[item as usize].head = idx;
                    self.nodes[cur as usize].children.insert(pos, (item, idx));
                    idx
                }
            };
            self.nodes[next as usize].count += count;
            self.headers[item as usize].count += count;
            cur = next;
        }
    }

    /// Walks `item`'s node-link chain, yielding `(node_index, count)`.
    pub fn chain(&self, item: u32) -> impl Iterator<Item = (u32, Support)> + '_ {
        let mut cur = self.headers[item as usize].head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let idx = cur;
            let node = &self.nodes[idx as usize];
            cur = node.next;
            Some((idx, node.count))
        })
    }

    /// The path of items from `node` up to (excluding) the root, returned
    /// root-first (strictly increasing order indices).
    pub fn prefix_path(&self, mut node: u32) -> Vec<u32> {
        let mut path = Vec::new();
        while node != NIL && self.nodes[node as usize].item != NIL_ITEM {
            path.push(self.nodes[node as usize].item);
            node = self.nodes[node as usize].parent;
        }
        path.reverse();
        path
    }

    /// If the tree consists of a single path from the root, returns it as
    /// `(item, count)` pairs root-first; otherwise `None`. Triggers the
    /// FP-growth single-path shortcut.
    pub fn single_path(&self) -> Option<Vec<(u32, Support)>> {
        let mut path = Vec::new();
        let mut cur = &self.nodes[0];
        loop {
            match cur.children.len() {
                0 => return Some(path),
                1 => {
                    let child = &self.nodes[cur.children[0].1 as usize];
                    path.push((child.item, child.count));
                    cur = child;
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_shares_prefixes() {
        let mut t = FpTree::new(4);
        t.insert(&[0, 1, 2], 1);
        t.insert(&[0, 1, 3], 1);
        t.insert(&[0, 1], 1);
        // root + 0 + 1 + 2 + 3 = 5 nodes.
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.header(0).count, 3);
        assert_eq!(t.header(1).count, 3);
        assert_eq!(t.header(2).count, 1);
    }

    #[test]
    fn chains_link_same_item_nodes() {
        let mut t = FpTree::new(3);
        t.insert(&[0, 2], 1);
        t.insert(&[1, 2], 1);
        t.insert(&[2], 2);
        let chain: Vec<(u32, Support)> = t.chain(2).collect();
        assert_eq!(chain.len(), 3);
        let total: Support = chain.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4);
        assert_eq!(t.header(2).count, 4);
    }

    #[test]
    fn prefix_paths_walk_to_root() {
        let mut t = FpTree::new(4);
        t.insert(&[0, 1, 3], 5);
        let (leaf, count) = t.chain(3).next().unwrap();
        assert_eq!(count, 5);
        assert_eq!(t.prefix_path(leaf), vec![0, 1, 3]);
        // Prefix path of the node for item 0 is just [0].
        let (n0, _) = t.chain(0).next().unwrap();
        assert_eq!(t.prefix_path(n0), vec![0]);
    }

    #[test]
    fn single_path_detection() {
        let mut t = FpTree::new(4);
        assert_eq!(t.single_path(), Some(vec![]));
        t.insert(&[0, 1, 2], 3);
        assert_eq!(t.single_path(), Some(vec![(0, 3), (1, 3), (2, 3)]));
        t.insert(&[0, 3], 1);
        assert_eq!(t.single_path(), None);
    }

    #[test]
    fn counts_accumulate_with_multiplicity() {
        let mut t = FpTree::new(2);
        t.insert(&[0], 2);
        t.insert(&[0, 1], 3);
        assert_eq!(t.header(0).count, 5);
        assert_eq!(t.header(1).count, 3);
    }
}
