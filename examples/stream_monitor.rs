//! Streaming monitor: Lossy Counting over the whole stream + an exact
//! sliding-window PLT over the recent past.
//!
//! Simulates a transaction stream whose item popularity *drifts* halfway
//! through: the sketch tracks global heavy hitters with deterministic
//! error bounds, while the window (after a rerank) reflects the new
//! regime exactly.
//!
//! ```text
//! cargo run --release --example stream_monitor
//! ```

use plt::core::ranking::RankPolicy;
use plt::data::{ZipfConfig, ZipfGenerator};
use plt::stream::{LossyCounter, SlidingWindow};

fn main() {
    // Two regimes: the second shifts every item id up by 50, changing the
    // popular head of the distribution.
    let regime_a = ZipfGenerator::new(ZipfConfig {
        num_transactions: 5_000,
        num_items: 300,
        seed: 11,
        ..Default::default()
    })
    .generate()
    .into_transactions();
    let regime_b: Vec<Vec<u32>> = ZipfGenerator::new(ZipfConfig {
        num_transactions: 5_000,
        num_items: 300,
        seed: 12,
        ..Default::default()
    })
    .generate()
    .into_transactions()
    .into_iter()
    .map(|t| t.into_iter().map(|i| i + 50).collect())
    .collect();

    let mut sketch = LossyCounter::new(0.001);
    let window_capacity = 1_000;
    let mut window = SlidingWindow::new(
        window_capacity,
        20,
        RankPolicy::Lexicographic,
        &regime_a[..window_capacity],
    )
    .expect("well-formed stream");
    for t in &regime_a[..window_capacity] {
        sketch.observe_transaction(t);
    }

    for t in regime_a[window_capacity..].iter().chain(&regime_b) {
        sketch.observe_transaction(t);
        window.push(t.clone()).expect("well-formed stream");
    }

    println!(
        "stream: {} item observations, sketch tracking {} items (ε = {})",
        sketch.observed(),
        sketch.tracked(),
        sketch.epsilon()
    );
    println!("\nglobal heavy hitters (support >= 2%):");
    for (item, count) in sketch.frequent(0.02).into_iter().take(8) {
        println!(
            "  item {item:>3}: ~{count} occurrences ({:.1}% of stream)",
            100.0 * count as f64 / sketch.observed() as f64
        );
    }

    // The window still ranks items from the warm-up (regime A); rerank to
    // see the drifted vocabulary.
    window.rerank().expect("well-formed window");
    let recent = window.mine();
    println!(
        "\nexact over the last {} transactions: {} frequent itemsets",
        window.len(),
        recent.len()
    );
    let mut top: Vec<_> = recent.of_size(2).collect();
    top.sort_by_key(|p| std::cmp::Reverse(p.1));
    println!("top recent pairs (all from the drifted regime):");
    for (itemset, support) in top.iter().take(5) {
        println!("  {itemset}  support={support}");
        // Drift check: regime B items are all >= 50.
        assert!(
            itemset.items().iter().all(|&i| i >= 50),
            "window should only see regime B"
        );
    }
}
