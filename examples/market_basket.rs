//! Market-basket analysis — the paper's motivating scenario ("which items
//! should be placed next to or near each other, catalog design, customers
//! buying habits").
//!
//! Generates a synthetic supermarket workload with named products and
//! engineered affinities, mines it with the conditional PLT miner,
//! condenses the result to closed/maximal families, and prints the
//! highest-lift rules.
//!
//! ```text
//! cargo run --example market_basket
//! ```

use plt::closed::{closed_itemsets, maximal_itemsets};
use plt::core::miner::Miner;
use plt::data::{BasketConfig, BasketGenerator, DbStats};
use plt::rules::{top_rules, RuleConfig};
use plt::ConditionalMiner;

fn main() {
    let generator = BasketGenerator::new(BasketConfig {
        num_baskets: 5_000,
        ..Default::default()
    });
    let db = generator.generate();
    let catalog = generator.catalog();
    println!("workload: {}", DbStats::of(&db));

    let min_support = db.absolute_support(0.03); // 3%
    let result = ConditionalMiner::default().mine(db.transactions(), min_support);
    println!(
        "\nfrequent itemsets at 3% support: {} (largest has {} items)",
        result.len(),
        result.max_size()
    );

    let closed = closed_itemsets(&result);
    let maximal = maximal_itemsets(&result);
    println!(
        "condensed: {} closed, {} maximal",
        closed.len(),
        maximal.len()
    );

    println!("\nmost frequent pairs:");
    let mut pairs: Vec<_> = result.of_size(2).collect();
    pairs.sort_by_key(|p| std::cmp::Reverse(p.1));
    for (itemset, support) in pairs.iter().take(8) {
        println!(
            "  {}  support={} ({:.1}%)",
            catalog.render(itemset.items()),
            support,
            100.0 * *support as f64 / db.len() as f64
        );
    }

    println!("\ntop rules by confidence (min 60%):");
    for rule in top_rules(
        &result,
        RuleConfig {
            min_confidence: 0.6,
        },
        10,
    ) {
        println!(
            "  {} => {}  conf={:.2} lift={:.2}",
            catalog.render(rule.antecedent.items()),
            catalog.render(rule.consequent.items()),
            rule.confidence,
            rule.lift,
        );
    }

    // Sanity: the engineered bread→butter affinity must surface.
    let bread = catalog.id("bread").expect("catalog item");
    let butter = catalog.id("butter").expect("catalog item");
    let pair = db.support_by_scan(&[bread, butter]);
    println!(
        "\nengineered affinity check: bread+butter co-occur in {pair} baskets \
         ({:.1}% of bread baskets)",
        100.0 * pair as f64 / db.support_by_scan(&[bread]) as f64
    );
}
