//! Category-structured market-basket generator with named products.
//!
//! The paper motivates association rules with supermarket data ("95% of
//! customers who buy item X are willing to buy item Y"). This generator
//! produces exactly that kind of workload for the domain examples: products
//! grouped into categories, shoppers who pick a few categories per trip and
//! several products within each, plus engineered cross-category affinities
//! (the classic bread→butter pairs) so that the mined rules are
//! recognisable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::catalog::ItemCatalog;
use crate::transaction::{Item, TransactionDb};

/// Parameters of the basket generator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasketConfig {
    /// Number of baskets (transactions).
    pub num_baskets: usize,
    /// Mean number of categories visited per trip.
    pub avg_categories: f64,
    /// Probability of buying each product within a visited category.
    pub within_category_prob: f64,
    /// Probability that an affinity partner is added when its trigger
    /// product is in the basket.
    pub affinity_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BasketConfig {
    fn default() -> Self {
        BasketConfig {
            num_baskets: 5_000,
            avg_categories: 2.5,
            within_category_prob: 0.45,
            affinity_prob: 0.75,
            seed: 42,
        }
    }
}

/// The built-in product taxonomy: (category, products).
const TAXONOMY: &[(&str, &[&str])] = &[
    ("bakery", &["bread", "bagels", "croissant", "muffins"]),
    ("dairy", &["milk", "butter", "cheese", "yogurt", "eggs"]),
    (
        "produce",
        &["apples", "bananas", "lettuce", "tomatoes", "onions"],
    ),
    ("meat", &["chicken", "beef", "bacon", "sausage"]),
    ("drinks", &["coffee", "tea", "juice", "soda", "beer"]),
    ("snacks", &["chips", "cookies", "chocolate", "crackers"]),
    ("household", &["detergent", "paper_towels", "soap"]),
];

/// Cross-category affinities: buying the first strongly suggests the
/// second. These become the strongest rules in the mined output.
const AFFINITIES: &[(&str, &str)] = &[
    ("bread", "butter"),
    ("bread", "milk"),
    ("bagels", "cheese"),
    ("coffee", "cookies"),
    ("beer", "chips"),
    ("bacon", "eggs"),
    ("tea", "milk"),
    ("chips", "soda"),
];

/// The basket generator.
#[derive(Debug, Clone)]
pub struct BasketGenerator {
    config: BasketConfig,
    catalog: ItemCatalog,
    categories: Vec<Vec<Item>>,
    affinities: Vec<(Item, Item)>,
}

impl BasketGenerator {
    /// Builds the taxonomy and interned catalog.
    pub fn new(config: BasketConfig) -> BasketGenerator {
        let mut catalog = ItemCatalog::new();
        let categories: Vec<Vec<Item>> = TAXONOMY
            .iter()
            .map(|(_, products)| products.iter().map(|p| catalog.intern(p)).collect())
            .collect();
        let affinities = AFFINITIES
            .iter()
            .map(|(a, b)| (catalog.intern(a), catalog.intern(b)))
            .collect();
        BasketGenerator {
            config,
            catalog,
            categories,
            affinities,
        }
    }

    /// The product catalog (for decoding mined itemsets back to names).
    pub fn catalog(&self) -> &ItemCatalog {
        &self.catalog
    }

    /// Names of the categories, in id order of their first product.
    pub fn category_names(&self) -> Vec<&'static str> {
        TAXONOMY.iter().map(|(c, _)| *c).collect()
    }

    /// Generates the basket database.
    pub fn generate(&self) -> TransactionDb {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut baskets = Vec::with_capacity(self.config.num_baskets);
        for _ in 0..self.config.num_baskets {
            let mut basket: Vec<Item> = Vec::new();
            // Visit a Poisson-ish number of categories (at least one).
            let visits = (super::poisson(&mut rng, self.config.avg_categories - 1.0) + 1)
                .min(self.categories.len());
            // Choose distinct categories by partial shuffle.
            let mut order: Vec<usize> = (0..self.categories.len()).collect();
            for i in 0..visits {
                let j = rng.gen_range(i..order.len());
                order.swap(i, j);
            }
            for &cat in &order[..visits] {
                for &product in &self.categories[cat] {
                    if rng.gen::<f64>() < self.config.within_category_prob {
                        basket.push(product);
                    }
                }
            }
            // Affinity pass: partners ride along with their triggers.
            for &(trigger, partner) in &self.affinities {
                if basket.contains(&trigger)
                    && !basket.contains(&partner)
                    && rng.gen::<f64>() < self.config.affinity_prob
                {
                    basket.push(partner);
                }
            }
            basket.sort_unstable();
            basket.dedup();
            baskets.push(basket);
        }
        TransactionDb::from_sorted(baskets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = BasketGenerator::new(BasketConfig::default()).generate();
        let b = BasketGenerator::new(BasketConfig::default()).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn catalog_covers_all_products() {
        let g = BasketGenerator::new(BasketConfig::default());
        let expected: usize = TAXONOMY.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(g.catalog().len(), expected);
        assert!(g.catalog().id("bread").is_some());
        assert!(g.catalog().id("beer").is_some());
        assert_eq!(g.category_names().len(), TAXONOMY.len());
    }

    #[test]
    fn affinities_show_up_in_the_data() {
        let g = BasketGenerator::new(BasketConfig {
            num_baskets: 4_000,
            ..Default::default()
        });
        let db = g.generate();
        let bread = g.catalog().id("bread").unwrap();
        let butter = g.catalog().id("butter").unwrap();
        let bread_sup = db.support_by_scan(&[bread]);
        let pair_sup = db.support_by_scan(&[bread, butter]);
        assert!(bread_sup > 100, "bread should be common");
        // Confidence bread→butter should clearly exceed butter's base rate.
        let conf = pair_sup as f64 / bread_sup as f64;
        let butter_rate = db.support_by_scan(&[butter]) as f64 / db.len() as f64;
        assert!(
            conf > butter_rate + 0.2,
            "affinity should lift confidence: conf={conf:.2} base={butter_rate:.2}"
        );
    }

    #[test]
    fn baskets_are_sorted_sets() {
        let db = BasketGenerator::new(BasketConfig {
            num_baskets: 500,
            ..Default::default()
        })
        .generate();
        for t in db.transactions() {
            assert!(t.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
