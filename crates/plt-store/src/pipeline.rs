//! `DurablePipeline`: a [`ShardedPipeline`] wired to a [`Store`].
//!
//! The division of labour:
//!
//! * the sharded pipeline owns the in-memory structures (window, counts,
//!   PLT, fragments) and the incremental re-mine;
//! * the store owns the files (WAL, segments, manifest);
//! * this type owns the *policy*: WAL-before-apply, which shards are
//!   resident, when to spill, when to checkpoint, and how a query routes
//!   between a resident fragment and an mmap segment.
//!
//! Shards key the rank space by the vector-sum (Lemma 4.1.1: a vector's
//! sum is the rank of its last item), so "cold shard" means a rank range
//! no recent delta touched — exactly the fragments worth pushing to
//! disk. The pipeline runs with `defer_merge`: fragments are never
//! force-merged, so a spilled shard costs no memory until a query or a
//! materialized snapshot needs it.

use std::io;
use std::path::Path;
use std::time::Instant;

use plt_core::error::PltError;
use plt_core::item::{Item, Itemset, Rank, Support};
use plt_core::miner::MiningResult;
use plt_core::posvec::PositionVector;
use plt_core::ranking::ItemRanking;
use plt_obs::Obs;
use plt_shard::{Delta, RebuildReport, ShardConfig, ShardedPipeline};

use crate::segment::ShardEntries;
use crate::store::{CheckpointInput, Recovered, Store, StoreOptions, StoreStats};

/// Errors from the durable pipeline: storage or mining.
#[derive(Debug)]
pub enum StoreError {
    /// File-level failure.
    Io(io::Error),
    /// Mining/structure failure.
    Plt(PltError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage: {e}"),
            StoreError::Plt(e) => write!(f, "pipeline: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<PltError> for StoreError {
    fn from(e: PltError) -> StoreError {
        StoreError::Plt(e)
    }
}

/// Policy knobs for a [`DurablePipeline`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// File-level options (fsync batching, compaction, fault injection).
    pub store: StoreOptions,
    /// Resident-shard budget: after each apply, the coldest fragments
    /// beyond this count are spilled to segments and evicted. `None`
    /// keeps everything resident (durability without the memory cap).
    pub resident_shards: Option<usize>,
    /// Maintain the eagerly merged snapshot (`result()`). Disable for
    /// datasets bigger than memory: queries then go through
    /// [`DurablePipeline::support_of`], which touches only one shard.
    pub materialize_merged: bool,
    /// Checkpoint automatically every this many applies. `None` means
    /// only explicit [`DurablePipeline::checkpoint`] calls.
    pub checkpoint_every: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            store: StoreOptions::default(),
            resident_shards: None,
            materialize_merged: true,
            checkpoint_every: Some(32),
        }
    }
}

/// What recovery did at open.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Transactions restored from the window snapshot.
    pub window_transactions: usize,
    /// Delta records replayed from the WAL tail.
    pub replayed_deltas: u64,
    /// Wall-clock milliseconds for the whole open-and-replay.
    pub recovery_ms: u64,
}

/// A sharded incremental pipeline with a durable spine. See the module
/// docs for the protocol.
pub struct DurablePipeline {
    pipeline: ShardedPipeline,
    store: Store,
    options: DurableOptions,
    merged: MiningResult,
    /// Shards whose fragments changed since the last checkpoint.
    changed: Vec<bool>,
    /// Apply counter at each shard's last re-mine (cold = small).
    last_touch: Vec<u64>,
    applies: u64,
    applies_since_checkpoint: u64,
    recovery: RecoveryReport,
}

impl DurablePipeline {
    /// Opens a data directory: fresh start when empty, full recovery
    /// (manifest → window + ranking + segments, then WAL-tail replay)
    /// when not. `config.defer_merge` is forced on — merging is this
    /// type's job.
    pub fn open(
        dir: &Path,
        mut config: ShardConfig,
        options: DurableOptions,
    ) -> Result<DurablePipeline, StoreError> {
        config.defer_merge = true;
        let started = Instant::now();
        let (store, recovered) = Store::open(dir, options.store)?;
        let Recovered {
            manifest,
            window,
            tail,
        } = recovered;

        let (pipeline, window_transactions) = match &manifest {
            Some(m) => {
                if m.min_support != config.min_support {
                    return Err(StoreError::Io(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "data dir was written at min_support {}, reopened with {}",
                            m.min_support, config.min_support
                        ),
                    )));
                }
                let n = window.len();
                let pipeline = ShardedPipeline::restore(
                    window,
                    m.ranking(),
                    config,
                    vec![None; m.shard_count],
                    m.dirty.clone(),
                )?;
                (pipeline, n)
            }
            None => (ShardedPipeline::new(&[], config)?, 0),
        };

        let shard_count = pipeline.shard_count();
        let mut durable = DurablePipeline {
            pipeline,
            store,
            options,
            merged: MiningResult::new(config.min_support, 0),
            changed: vec![false; shard_count],
            last_touch: vec![0; shard_count],
            applies: 0,
            applies_since_checkpoint: 0,
            recovery: RecoveryReport::default(),
        };

        // Replay the tail: every delta past the checkpoint, in order.
        // Re-ranks/evictions/checkpoint markers are informational — the
        // pipeline re-derives their effects deterministically.
        let mut replayed = 0u64;
        for rec in &tail {
            if let Some(delta) = rec.record.to_delta() {
                durable.apply_inner(delta, &mut Obs::none(), false)?;
                replayed += 1;
            }
        }
        if durable.options.materialize_merged {
            durable.rebuild_merged();
        }
        let ms = started.elapsed().as_millis() as u64;
        durable.store.set_recovery(ms, replayed);
        durable.recovery = RecoveryReport {
            window_transactions,
            replayed_deltas: replayed,
            recovery_ms: ms,
        };
        Ok(durable)
    }

    /// Applies a delta durably: WAL append first, then the in-memory
    /// apply, then spill/checkpoint policy.
    pub fn apply(&mut self, delta: Delta) -> Result<RebuildReport, StoreError> {
        self.apply_obs(delta, &mut Obs::none())
    }

    /// [`apply`](Self::apply) with observability spans/counters.
    pub fn apply_obs(&mut self, delta: Delta, obs: &mut Obs) -> Result<RebuildReport, StoreError> {
        let report = self.apply_inner(delta, obs, true)?;
        if self.options.materialize_merged {
            self.rebuild_merged();
        }
        if let Some(every) = self.options.checkpoint_every {
            if self.applies_since_checkpoint >= every {
                self.checkpoint()?;
            }
        }
        let stats = self.store.stats();
        obs.gauge("store.wal_bytes", stats.wal_bytes);
        obs.gauge("store.segments", stats.segments);
        obs.gauge("store.segment_bytes", stats.segment_bytes);
        obs.gauge("store.resident_shards", self.resident_shards() as u64);
        Ok(report)
    }

    fn apply_inner(
        &mut self,
        delta: Delta,
        obs: &mut Obs,
        log: bool,
    ) -> Result<RebuildReport, StoreError> {
        if log {
            self.store.append_delta(&delta)?;
        }
        let report = self.pipeline.apply_obs(delta, obs)?;
        self.applies += 1;
        self.applies_since_checkpoint += 1;

        let n = self.pipeline.shard_count();
        if report.reranked {
            // New rank function ⇒ every stored canonical vector is void.
            self.changed = vec![true; n];
            self.last_touch = vec![self.applies; n];
            self.store.invalidate_segments();
            if log {
                self.store
                    .note_rerank(self.pipeline.plt().ranking().len() as u64)?;
            }
        } else {
            self.changed.resize(n, false);
            self.last_touch.resize(n, 0);
            for &(s, _) in &report.shard_timings {
                self.changed[s] = true;
                self.last_touch[s] = self.applies;
            }
        }

        self.enforce_budget()?;
        Ok(report)
    }

    /// Spills the coldest clean fragments beyond the resident budget.
    fn enforce_budget(&mut self) -> Result<(), StoreError> {
        let Some(budget) = self.options.resident_shards else {
            return Ok(());
        };
        let n = self.pipeline.shard_count();
        let mut resident: Vec<usize> = (0..n)
            .filter(|&s| self.pipeline.fragment(s).is_some() && !self.pipeline.is_dirty(s))
            .collect();
        if resident.len() <= budget {
            return Ok(());
        }
        // Coldest first: smallest last-touch apply counter.
        resident.sort_by_key(|&s| self.last_touch[s]);
        let victims: Vec<usize> = resident[..resident.len() - budget].to_vec();

        // Shards whose on-disk copy is stale (or absent) need a spill
        // segment; the rest can be dropped outright.
        let ranking = self.pipeline.plt().ranking().clone();
        let mut to_write: Vec<ShardEntries> = Vec::new();
        for &s in &victims {
            if self.changed[s] || !self.store.has_persisted(s) {
                let frag = self.pipeline.fragment(s).expect("victim is resident");
                to_write.push(fragment_entries(s, frag, &ranking));
            }
        }
        self.store.spill(self.pipeline.len() as u64, &to_write)?;
        for sh in &to_write {
            self.changed[sh.shard as usize] = false;
        }
        for &s in &victims {
            self.pipeline.evict_fragment(s);
        }
        Ok(())
    }

    /// Merges every shard into the materialized snapshot, loading
    /// spilled fragments transiently from their segments.
    fn rebuild_merged(&mut self) {
        let min_support = self.pipeline.config().min_support;
        let num_transactions = self.pipeline.len() as u64;
        let ranking = self.pipeline.plt().ranking();
        let mut merged = MiningResult::new(min_support, num_transactions);
        for s in 0..self.pipeline.shard_count() {
            if let Some(frag) = self.pipeline.fragment(s) {
                merged.merge(frag.clone());
            } else if let Some(entries) = self.store.load_shard(s) {
                merged.merge(entries_fragment(
                    &entries,
                    ranking,
                    min_support,
                    num_transactions,
                ));
            }
            // A shard that is neither resident nor persisted holds
            // nothing (fresh shard before its first re-mine).
        }
        self.merged = merged;
    }

    /// Publishes a checkpoint: every changed or never-persisted fragment
    /// goes into a segment, the window is snapshotted, the WAL rotates,
    /// the manifest lands atomically.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let n = self.pipeline.shard_count();
        let ranking = self.pipeline.plt().ranking().clone();
        let mut persist = Vec::new();
        for s in 0..n {
            if self.changed[s] || !self.store.has_persisted(s) {
                if let Some(frag) = self.pipeline.fragment(s) {
                    persist.push(fragment_entries(s, frag, &ranking));
                }
                // Evicted + changed cannot happen (eviction clears
                // `changed`); evicted + never-persisted cannot either
                // (eviction writes the spill segment first).
            }
        }
        let window: Vec<&[Item]> = self.pipeline.window().collect();
        let input = CheckpointInput {
            window,
            ranking_items: ranking
                .entries()
                .map(|(item, _, sup)| (item, sup))
                .collect(),
            policy: ranking.policy(),
            min_support: self.pipeline.config().min_support,
            shard_count: n,
            dirty: (0..n).map(|s| self.pipeline.is_dirty(s)).collect(),
            persist,
        };
        self.store.checkpoint(input)?;
        self.changed = vec![false; n];
        self.applies_since_checkpoint = 0;
        Ok(())
    }

    /// Support of an itemset, routed per shard: resident fragment when
    /// the shard is hot, mmap segment point-lookup when it is spilled.
    /// Exact for every itemset over ranked items; `None` means "not
    /// frequent".
    pub fn support_of(&self, items: &[Item]) -> Option<Support> {
        let mut items = items.to_vec();
        items.sort_unstable();
        items.dedup();
        if items.is_empty() {
            return None;
        }
        let ranking = self.pipeline.plt().ranking();
        let vector = PositionVector::canonical_for(&items, ranking)?;
        let shard = self.pipeline.shard_of_rank(vector.sum());
        match self.pipeline.fragment(shard) {
            Some(frag) => frag.support(&items),
            None => self.store.lookup(shard, vector.positions()),
        }
    }

    /// The materialized snapshot (empty when `materialize_merged` is
    /// off — use [`support_of`](Self::support_of) then).
    pub fn result(&self) -> &MiningResult {
        &self.merged
    }

    /// The underlying sharded pipeline (read-only).
    pub fn pipeline(&self) -> &ShardedPipeline {
        &self.pipeline
    }

    /// Fragments currently held in memory.
    pub fn resident_shards(&self) -> usize {
        (0..self.pipeline.shard_count())
            .filter(|&s| self.pipeline.fragment(s).is_some())
            .count()
    }

    /// Storage counters.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// What recovery did at open.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Transactions in the window.
    pub fn len(&self) -> usize {
        self.pipeline.len()
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.pipeline.is_empty()
    }

    /// Forces the WAL batch to disk without waiting for the next
    /// batched fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.store.sync()?;
        Ok(())
    }
}

/// Converts a fragment into segment entries: each itemset keyed by its
/// canonical position vector under `ranking` (Lemma 4.1.2 makes this a
/// bijection, so the segment can answer exact point lookups).
fn fragment_entries(shard: usize, frag: &MiningResult, ranking: &ItemRanking) -> ShardEntries {
    let entries = frag
        .iter()
        .map(|(itemset, support)| {
            let v = PositionVector::canonical_for(itemset.items(), ranking)
                .expect("fragment itemsets contain only ranked items");
            (v.positions().to_vec(), support)
        })
        .collect();
    ShardEntries {
        shard: shard as u32,
        entries,
    }
}

/// Inverse of [`fragment_entries`]: decode segment entries back into a
/// fragment under `ranking`.
fn entries_fragment(
    entries: &[(Vec<Rank>, Support)],
    ranking: &ItemRanking,
    min_support: Support,
    num_transactions: u64,
) -> MiningResult {
    let mut frag = MiningResult::new(min_support, num_transactions);
    for (positions, support) in entries {
        let mut ranks = Vec::with_capacity(positions.len());
        let mut acc: Rank = 0;
        for &p in positions {
            acc += p;
            ranks.push(acc);
        }
        let mut items = ranking.items_for_ranks(&ranks);
        items.sort_unstable();
        frag.insert(Itemset::from_sorted(items), *support);
    }
    frag
}
