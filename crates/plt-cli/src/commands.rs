//! Command execution for `plt-mine`.

use std::io::Write;

use plt_baselines::{
    AisMiner, AprioriMiner, DicMiner, EclatMiner, FpGrowthMiner, HMineMiner, PartitionMiner,
    SamplingMiner,
};
use plt_closed::{closed_itemsets, maximal_itemsets};
use plt_compress::CompressedPlt;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::miner::{Miner, MiningResult};
use plt_core::tree::LexTree;
use plt_core::CondEngine;
use plt_data::gen::basket::{BasketConfig, BasketGenerator};
use plt_data::gen::dense::{DenseConfig, DenseGenerator};
use plt_data::gen::quest::{QuestConfig, QuestGenerator};
use plt_data::{fimi, DbStats, TransactionDb};
use plt_rules::{top_rules, RuleConfig};
use plt_shard::{Delta, MineStrategy, MinerBuilder};

use crate::args::{Algo, Command, Condense, Engine, GenKind, Kernel, MinSup};

/// Errors surfaced to the user: message only, no panics.
pub type CmdResult = Result<(), String>;

/// Runs one parsed command.
pub fn execute(command: Command, out: &mut dyn Write) -> CmdResult {
    match command {
        Command::Mine {
            input,
            min_sup,
            algo,
            engine,
            kernel,
            condense,
            limit,
            metrics_json,
        } => mine(
            &input,
            min_sup,
            algo,
            engine,
            kernel,
            condense,
            limit,
            metrics_json.as_deref(),
            out,
        ),
        Command::Rules {
            input,
            min_sup,
            min_conf,
            top,
        } => rules(&input, min_sup, min_conf, top, out),
        Command::Stats { input } => stats(&input, out),
        Command::Show { input, min_sup } => show(&input, min_sup, out),
        Command::Gen {
            kind,
            transactions,
            output,
            seed,
        } => gen(kind, transactions, &output, seed, out),
        Command::Index {
            input,
            min_sup,
            output,
        } => index(&input, min_sup, &output, out),
        Command::MineIndex {
            index,
            topdown,
            limit,
        } => mine_index(&index, topdown, limit, out),
        Command::MineIncremental {
            input,
            delta,
            min_sup,
            shards,
            limit,
            verify_full,
        } => mine_incremental(&input, &delta, min_sup, shards, limit, verify_full, out),
        Command::Query { index, itemsets } => query(&index, &itemsets, out),
        Command::Serve {
            input,
            min_sup,
            addr,
            min_conf,
            window,
            fault_seed,
            deadline_ms,
            data_dir,
            server_model,
            rebuild_mode,
            sketch_eps,
            sketch_delta,
        } => serve(
            &input,
            min_sup,
            &addr,
            min_conf,
            window,
            fault_seed,
            deadline_ms,
            data_dir.as_deref(),
            server_model,
            rebuild_mode,
            sketch_eps,
            sketch_delta,
            out,
        ),
        Command::StoreInspect { data_dir } => store_inspect(&data_dir, out),
        Command::QueryServer {
            addr,
            itemsets,
            top,
            recommend,
            expr,
            explain,
            stats,
            shutdown,
            protocol_version,
        } => query_server(
            &addr,
            &itemsets,
            top,
            recommend,
            expr,
            explain,
            stats,
            shutdown,
            protocol_version,
            out,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve(
    input: &str,
    min_sup: MinSup,
    addr: &str,
    min_conf: f64,
    window: Option<usize>,
    fault_seed: Option<u64>,
    deadline_ms: Option<u64>,
    data_dir: Option<&str>,
    server_model: plt_serve::ServerModel,
    rebuild_mode: plt_serve::RebuildMode,
    sketch_eps: Option<f64>,
    sketch_delta: f64,
    out: &mut dyn Write,
) -> CmdResult {
    let db = load(input)?;
    let abs = min_sup.resolve(db.len());
    if abs == 0 {
        return Err("resolved minimum support is zero".into());
    }
    // One plan shared by server and builder: a chaos run's fault
    // sequence is a pure function of the seed.
    let fault =
        fault_seed.map(|seed| plt_serve::FaultPlan::shared(plt_serve::FaultConfig::chaos(seed)));
    let config = plt_serve::BuilderConfig {
        // Default window: room for the warmup plus as much again of
        // streamed traffic before old transactions age out.
        window_capacity: window.unwrap_or_else(|| (db.len() * 2).max(1)),
        min_support: abs,
        rank_policy: plt_core::RankPolicy::default(),
        shard_count: plt_shard::DEFAULT_SHARD_COUNT,
        rule_config: RuleConfig {
            min_confidence: min_conf,
        },
        fault: fault.clone(),
        data_dir: data_dir.map(std::path::PathBuf::from),
        durable: plt_store::DurableOptions::default(),
        rebuild_mode,
        sketch: sketch_eps.map(|epsilon| plt_serve::SketchConfig {
            epsilon,
            delta: sketch_delta,
            ..plt_serve::SketchConfig::default()
        }),
    };
    let (engine, builder) = plt_serve::bootstrap(db.transactions(), config)
        .map_err(|e| format!("cannot build snapshot: {e}"))?;
    let snapshot = engine.current();
    let mut server_config = plt_serve::ServerConfig {
        server_model,
        fault: fault.clone(),
        ..plt_serve::ServerConfig::default()
    };
    if let Some(ms) = deadline_ms {
        let deadline = std::time::Duration::from_millis(ms);
        server_config.read_deadline = Some(deadline);
        server_config.write_deadline = Some(deadline);
    }
    let handle = plt_serve::serve(addr, engine, Some(builder.queue()), server_config)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    writeln!(
        out,
        "serving {input} on {} ({} model): {} itemsets, {} rules (min_sup = {abs} of {}); \
         send {{\"op\":\"shutdown\"}} to stop",
        handle.addr(),
        server_model.as_str(),
        snapshot.num_itemsets(),
        snapshot.num_rules(),
        db.len()
    )
    .map_err(|e| e.to_string())?;
    if let Some(seed) = fault_seed {
        writeln!(out, "fault injection active (seed {seed})").map_err(|e| e.to_string())?;
    }
    if let Some(eps) = sketch_eps {
        writeln!(
            out,
            "approximate tier active: sketch eps={eps} delta={sketch_delta} (query with APPROX)"
        )
        .map_err(|e| e.to_string())?;
    }
    if rebuild_mode != plt_serve::RebuildMode::Incremental {
        writeln!(out, "sampled rebuilds active (Toivonen, exact fallback)")
            .map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    handle.join();
    builder.stop();
    Ok(())
}

/// Dumps a durable data directory as JSON: manifest epoch/ranking,
/// WAL record counts by type, per-segment block-index stats.
fn store_inspect(data_dir: &str, out: &mut dyn Write) -> CmdResult {
    let json = plt_store::inspect_json(std::path::Path::new(data_dir))
        .map_err(|e| format!("cannot inspect {data_dir}: {e}"))?;
    writeln!(out, "{json}").map_err(|e| e.to_string())?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn query_server(
    addr: &str,
    itemsets: &[Vec<u32>],
    top: Option<usize>,
    recommend: Option<Vec<u32>>,
    expr: Option<String>,
    explain: bool,
    stats: bool,
    shutdown: bool,
    protocol_version: u64,
    out: &mut dyn Write,
) -> CmdResult {
    let config = plt_serve::ClientConfig {
        protocol_version,
        ..plt_serve::ClientConfig::default()
    };
    let mut client = plt_serve::Client::with_config(addr, config)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let io_err = |e: std::io::Error| e.to_string();
    for items in itemsets {
        let reply = client
            .support(items)
            .map_err(|e| format!("support query failed: {e}"))?;
        let rendered: Vec<String> = items.iter().map(u32::to_string).collect();
        writeln!(
            out,
            "{{{}}}  support={} frequent={} source={} (generation {})",
            rendered.join(","),
            reply.support,
            reply.frequent,
            reply.source,
            reply.generation
        )
        .map_err(io_err)?;
    }
    if let Some(k) = top {
        writeln!(out, "top {k} itemsets:").map_err(io_err)?;
        for (items, support) in client
            .top_k(k, 1)
            .map_err(|e| format!("top_k query failed: {e}"))?
        {
            let rendered: Vec<String> = items.iter().map(u32::to_string).collect();
            writeln!(out, "  {{{}}}  support={support}", rendered.join(",")).map_err(io_err)?;
        }
    }
    if let Some(basket) = recommend {
        let rendered: Vec<String> = basket.iter().map(u32::to_string).collect();
        writeln!(out, "recommendations for {{{}}}:", rendered.join(",")).map_err(io_err)?;
        for (item, confidence) in client
            .recommend(&basket, 10)
            .map_err(|e| format!("recommend query failed: {e}"))?
        {
            writeln!(out, "  {item}  confidence={confidence:.3}").map_err(io_err)?;
        }
    }
    if let Some(expr) = expr {
        let v = client
            .query(&expr)
            .map_err(|e| format!("query failed: {e}"))?;
        if explain {
            let bound = v
                .get("error_bound")
                .and_then(plt_serve::json::Json::as_u64)
                .map(|b| format!(" error_bound={b}"))
                .unwrap_or_default();
            writeln!(
                out,
                "plan={} cost={:.1} cache_hit={} approx={}{bound} generation={}",
                v.get("plan")
                    .and_then(plt_serve::json::Json::as_str)
                    .unwrap_or("?"),
                v.get("cost")
                    .and_then(plt_serve::json::Json::as_f64)
                    .unwrap_or(f64::NAN),
                v.get("cache_hit")
                    .and_then(plt_serve::json::Json::as_bool)
                    .unwrap_or(false),
                v.get("approx")
                    .and_then(plt_serve::json::Json::as_bool)
                    .unwrap_or(false),
                v.get("generation")
                    .and_then(plt_serve::json::Json::as_u64)
                    .unwrap_or(0),
            )
            .map_err(io_err)?;
        }
        let kind = v
            .get("row_kind")
            .and_then(plt_serve::json::Json::as_str)
            .unwrap_or("");
        let rows = v
            .get("rows")
            .and_then(plt_serve::json::Json::as_arr)
            .ok_or_else(|| "malformed query response: missing rows".to_string())?;
        let items_of = |row: &plt_serve::json::Json, field: &str| -> String {
            let rendered: Vec<String> = row
                .get(field)
                .and_then(plt_serve::json::Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(plt_serve::json::Json::as_u64)
                        .map(|i| i.to_string())
                        .collect()
                })
                .unwrap_or_default();
            format!("{{{}}}", rendered.join(","))
        };
        for row in rows {
            let line = match kind {
                "support" => format!(
                    "{}  support={} frequent={}",
                    items_of(row, "items"),
                    row.get("support")
                        .and_then(plt_serve::json::Json::as_u64)
                        .unwrap_or(0),
                    row.get("frequent")
                        .and_then(plt_serve::json::Json::as_bool)
                        .unwrap_or(false),
                ),
                "rules" => format!(
                    "{} => {}  confidence={:.3} lift={:.3} support={}",
                    items_of(row, "antecedent"),
                    items_of(row, "consequent"),
                    row.get("confidence")
                        .and_then(plt_serve::json::Json::as_f64)
                        .unwrap_or(f64::NAN),
                    row.get("lift")
                        .and_then(plt_serve::json::Json::as_f64)
                        .unwrap_or(f64::NAN),
                    row.get("support")
                        .and_then(plt_serve::json::Json::as_u64)
                        .unwrap_or(0),
                ),
                _ => format!(
                    "{}  support={}",
                    items_of(row, "items"),
                    row.get("support")
                        .and_then(plt_serve::json::Json::as_u64)
                        .unwrap_or(0),
                ),
            };
            writeln!(out, "{line}").map_err(io_err)?;
        }
    }
    if stats {
        let v = client
            .stats()
            .map_err(|e| format!("stats query failed: {e}"))?;
        writeln!(out, "{v}").map_err(io_err)?;
    }
    if shutdown {
        client
            .shutdown()
            .map_err(|e| format!("shutdown failed: {e}"))?;
        writeln!(out, "server stopping").map_err(io_err)?;
    }
    Ok(())
}

fn load_index(path: &str) -> Result<plt_core::Plt, String> {
    let compressed =
        plt_compress::file::load(path).map_err(|e| format!("cannot read index {path}: {e}"))?;
    Ok(compressed.to_plt())
}

fn index(input: &str, min_sup: MinSup, output: &str, out: &mut dyn Write) -> CmdResult {
    let db = load(input)?;
    let abs = min_sup.resolve(db.len());
    let plt = construct(db.transactions(), abs, ConstructOptions::conditional())
        .map_err(|e| e.to_string())?;
    let compressed = CompressedPlt::from_plt(&plt);
    plt_compress::file::save(output, &compressed)
        .map_err(|e| format!("cannot write {output}: {e}"))?;
    writeln!(
        out,
        "wrote {output}: {} vectors, {} B payload (min_sup = {abs} of {})",
        compressed.num_vectors(),
        compressed.data_bytes(),
        db.len()
    )
    .map_err(|e| e.to_string())
}

fn mine_index(path: &str, topdown: bool, limit: Option<usize>, out: &mut dyn Write) -> CmdResult {
    let plt = load_index(path)?;
    let strategy = if topdown {
        MineStrategy::TopDown
    } else {
        MineStrategy::Conditional
    };
    let result = MinerBuilder::new()
        .strategy(strategy)
        .build()
        .mine_plt(&plt);
    let sorted = result.sorted();
    let shown = limit.unwrap_or(sorted.len()).min(sorted.len());
    writeln!(
        out,
        "{} frequent itemsets (min_sup = {} of {}, from index)",
        sorted.len(),
        plt.min_support(),
        plt.num_transactions()
    )
    .map_err(|e| e.to_string())?;
    for (itemset, support) in &sorted[..shown] {
        writeln!(out, "{itemset}  support={support}").map_err(|e| e.to_string())?;
    }
    if shown < sorted.len() {
        writeln!(out, "... ({} more)", sorted.len() - shown).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn mine_incremental(
    input: &str,
    delta_path: &str,
    min_sup: MinSup,
    shards: usize,
    limit: Option<usize>,
    verify_full: bool,
    out: &mut dyn Write,
) -> CmdResult {
    let base = load(input)?;
    let delta = load(delta_path)?;
    let abs = min_sup.resolve(base.len() + delta.len());
    if abs == 0 {
        return Err("resolved minimum support is zero".into());
    }
    let builder = MinerBuilder::new().min_support(abs).shard_count(shards);

    let started = std::time::Instant::now();
    let mut pipeline = builder
        .build_pipeline(base.transactions(), None)
        .map_err(|e| format!("cannot build pipeline over {input}: {e}"))?;
    let base_build = started.elapsed();
    let report = pipeline
        .apply(Delta::add(delta.transactions().to_vec()))
        .map_err(|e| format!("cannot apply {delta_path}: {e}"))?;

    writeln!(
        out,
        "base: {} transactions mined in {:.1?} across {} shards (min_sup = {abs})",
        base.len(),
        base_build,
        pipeline.shard_count(),
    )
    .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "delta: {} transactions applied in {:.1?}: {}/{} shards re-mined{}",
        delta.len(),
        report.total(),
        report.dirty_shards,
        report.total_shards,
        if report.reranked {
            " (vocabulary drift: re-ranked, full re-mine)"
        } else {
            ""
        },
    )
    .map_err(|e| e.to_string())?;
    for &(s, d) in &report.shard_timings {
        writeln!(out, "  shard {s}: re-mined in {d:.1?}").map_err(|e| e.to_string())?;
    }

    if verify_full {
        let mut all = base.transactions().to_vec();
        all.extend(delta.transactions().iter().cloned());
        let full = builder.build_miner().mine(&all, abs);
        let incremental: std::collections::BTreeMap<Vec<u32>, u64> = pipeline
            .result()
            .iter()
            .map(|(is, s)| (is.items().to_vec(), s))
            .collect();
        let reference: std::collections::BTreeMap<Vec<u32>, u64> = full
            .iter()
            .map(|(is, s)| (is.items().to_vec(), s))
            .collect();
        if incremental != reference {
            return Err(format!(
                "verify-full FAILED: incremental found {} itemsets, full re-mine {}",
                incremental.len(),
                reference.len()
            ));
        }
        writeln!(
            out,
            "verify-full: incremental result matches full re-mine ({} itemsets)",
            reference.len()
        )
        .map_err(|e| e.to_string())?;
    }

    let sorted = pipeline.result().sorted();
    let shown = limit.unwrap_or(sorted.len()).min(sorted.len());
    writeln!(out, "{} frequent itemsets", sorted.len()).map_err(|e| e.to_string())?;
    for (itemset, support) in &sorted[..shown] {
        writeln!(out, "{itemset}  support={support}").map_err(|e| e.to_string())?;
    }
    if shown < sorted.len() {
        writeln!(out, "... ({} more)", sorted.len() - shown).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn query(path: &str, itemsets: &[Vec<u32>], out: &mut dyn Write) -> CmdResult {
    let plt = load_index(path)?;
    let oracle = plt_core::SupportOracle::new(&plt);
    for items in itemsets {
        let support = oracle.support(items, &plt);
        let rendered: Vec<String> = items.iter().map(u32::to_string).collect();
        writeln!(
            out,
            "{{{}}}  support={support} ({:.2}%)",
            rendered.join(","),
            100.0 * support as f64 / plt.num_transactions().max(1) as f64
        )
        .map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn load(input: &str) -> Result<TransactionDb, String> {
    fimi::read_file(input).map_err(|e| format!("cannot read {input}: {e}"))
}

fn cond_engine(engine: Engine) -> CondEngine {
    match engine {
        Engine::Arena => CondEngine::Arena,
        Engine::Map => CondEngine::Map,
    }
}

fn plt_miner(strategy: MineStrategy, engine: Engine) -> Box<dyn Miner> {
    MinerBuilder::new()
        .strategy(strategy)
        .engine(cond_engine(engine))
        .build_miner()
}

fn miner_for(algo: Algo, engine: Engine) -> Box<dyn Miner> {
    match algo {
        Algo::Conditional => plt_miner(MineStrategy::Conditional, engine),
        Algo::TopDown => plt_miner(MineStrategy::TopDown, engine),
        Algo::Hybrid => plt_miner(MineStrategy::Hybrid, engine),
        Algo::Parallel => plt_miner(MineStrategy::Parallel, engine),
        Algo::Apriori => Box::new(AprioriMiner::default()),
        Algo::FpGrowth => Box::new(FpGrowthMiner),
        Algo::Eclat => Box::new(EclatMiner::default()),
        Algo::DEclat => Box::new(EclatMiner::with_diffsets()),
        Algo::HMine => Box::new(HMineMiner),
        Algo::Ais => Box::new(AisMiner),
        Algo::Partition => Box::new(PartitionMiner::default()),
        Algo::Dic => Box::new(DicMiner::default()),
        Algo::Sampling => Box::new(SamplingMiner::default()),
    }
}

fn run_miner(
    db: &TransactionDb,
    min_sup: MinSup,
    algo: Algo,
    engine: Engine,
    obs: &mut plt_obs::Obs,
) -> Result<MiningResult, String> {
    let abs = min_sup.resolve(db.len());
    if abs == 0 {
        return Err("resolved minimum support is zero".into());
    }
    Ok(miner_for(algo, engine).mine_with_obs(db.transactions(), abs, obs))
}

/// Renders the recorder plus run context as schema-v1 JSON and writes it
/// to `path`, creating parent directories as needed.
fn write_metrics_json(
    path: &str,
    recorder: &plt_obs::MetricsRecorder,
    context: &[(&str, String)],
) -> CmdResult {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create directory {}: {e}", parent.display()))?;
        }
    }
    let json = recorder.to_json_with(context);
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Maps the CLI kernel choice onto a process-global backend override.
fn kernel_backend(kernel: Kernel) -> Option<plt_core::kernels::Backend> {
    match kernel {
        Kernel::Auto => None,
        Kernel::Simd => Some(plt_core::kernels::Backend::Simd),
        Kernel::Scalar => Some(plt_core::kernels::Backend::Scalar),
    }
}

/// Restores the previous global backend override when dropped, so a
/// `--kernel` run cannot leak its selection into the rest of the process
/// (the library entry point is reused by tests and embedding callers).
struct KernelGuard(Option<plt_core::kernels::Backend>);

impl KernelGuard {
    fn set(kernel: Kernel) -> KernelGuard {
        let prev = plt_core::kernels::global_backend();
        plt_core::kernels::set_global_backend(kernel_backend(kernel));
        KernelGuard(prev)
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        plt_core::kernels::set_global_backend(self.0);
    }
}

#[allow(clippy::too_many_arguments)]
fn mine(
    input: &str,
    min_sup: MinSup,
    algo: Algo,
    engine: Engine,
    kernel: Kernel,
    condense: Condense,
    limit: Option<usize>,
    metrics_json: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let db = load(input)?;
    let _kernel_guard = KernelGuard::set(kernel);
    let mut recorder = plt_obs::MetricsRecorder::new();
    let started = std::time::Instant::now();
    // `--closed` under the default algorithm uses the native closed miner
    // (never materialises the full frequent family); other combinations
    // mine completely and filter.
    let (family, label) = {
        // Always record: one BTreeMap insert per phase is noise next to
        // the mining run itself, and it keeps the borrow simple. The
        // recorder is only rendered when `--metrics-json` was given.
        let mut obs = plt_obs::Obs::new(&mut recorder);
        if condense == Condense::Closed && algo == Algo::Conditional {
            let abs = min_sup.resolve(db.len());
            let family = obs.time("mine/closed", || {
                plt_closed::ClosedMiner::default().mine(db.transactions(), abs)
            });
            (family, "closed frequent")
        } else {
            let result = run_miner(&db, min_sup, algo, engine, &mut obs)?;
            match condense {
                Condense::All => (result, "frequent"),
                Condense::Closed => (closed_itemsets(&result), "closed frequent"),
                Condense::Maximal => (maximal_itemsets(&result), "maximal frequent"),
            }
        }
    };
    if let Some(path) = metrics_json {
        let context = [
            ("input", format!("{:?}", input)),
            ("algo", format!("{:?}", algo.name())),
            ("engine", format!("{:?}", engine.name())),
            ("kernel", format!("{:?}", kernel.name())),
            ("min_support", family.min_support().to_string()),
            ("num_transactions", db.len().to_string()),
            ("itemsets", family.len().to_string()),
            ("wall_ns", started.elapsed().as_nanos().to_string()),
        ];
        write_metrics_json(path, &recorder, &context)?;
    }
    let sorted = family.sorted();
    let shown = limit.unwrap_or(sorted.len()).min(sorted.len());
    writeln!(
        out,
        "{} {label} itemsets (min_sup = {} of {})",
        sorted.len(),
        family.min_support(),
        db.len()
    )
    .map_err(|e| e.to_string())?;
    for (itemset, support) in &sorted[..shown] {
        writeln!(out, "{itemset}  support={support}").map_err(|e| e.to_string())?;
    }
    if shown < sorted.len() {
        writeln!(out, "... ({} more)", sorted.len() - shown).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn rules(
    input: &str,
    min_sup: MinSup,
    min_conf: f64,
    top: Option<usize>,
    out: &mut dyn Write,
) -> CmdResult {
    let db = load(input)?;
    let result = run_miner(
        &db,
        min_sup,
        Algo::Conditional,
        Engine::default(),
        &mut plt_obs::Obs::none(),
    )?;
    let rules = top_rules(
        &result,
        RuleConfig {
            min_confidence: min_conf,
        },
        top.unwrap_or(usize::MAX),
    );
    writeln!(
        out,
        "{} rules at confidence >= {min_conf} (from {} frequent itemsets)",
        rules.len(),
        result.len()
    )
    .map_err(|e| e.to_string())?;
    for rule in &rules {
        writeln!(out, "{rule}").map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn stats(input: &str, out: &mut dyn Write) -> CmdResult {
    let db = load(input)?;
    writeln!(out, "{}", DbStats::of(&db)).map_err(|e| e.to_string())
}

fn show(input: &str, min_sup: MinSup, out: &mut dyn Write) -> CmdResult {
    let db = load(input)?;
    let abs = min_sup.resolve(db.len());
    let plt = construct(db.transactions(), abs, ConstructOptions::conditional())
        .map_err(|e| e.to_string())?;
    writeln!(
        out,
        "PLT over {} transactions, {} ranked items, {} distinct vectors",
        plt.num_transactions(),
        plt.ranking().len(),
        plt.num_vectors()
    )
    .map_err(|e| e.to_string())?;
    writeln!(out, "\nmatrices view:\n{}", plt.render_matrices()).map_err(|e| e.to_string())?;
    writeln!(out, "tree view:\n{}", LexTree::from_plt(&plt).render()).map_err(|e| e.to_string())?;
    let raw_items: usize = db.transactions().iter().map(Vec::len).sum();
    let report = CompressedPlt::report(&plt, raw_items);
    writeln!(
        out,
        "compressed: {} B payload + {} B index (raw DB {} B, ratio {:.3})",
        report.compressed_data_bytes,
        report.compressed_index_bytes,
        report.raw_db_bytes,
        report.ratio_vs_raw()
    )
    .map_err(|e| e.to_string())
}

fn gen(
    kind: GenKind,
    transactions: usize,
    output: &str,
    seed: u64,
    out: &mut dyn Write,
) -> CmdResult {
    let db = match kind {
        GenKind::Quest => QuestGenerator::new(QuestConfig {
            num_transactions: transactions,
            seed,
            ..QuestConfig::t10i4(transactions)
        })
        .generate(),
        GenKind::Dense => DenseGenerator::new(DenseConfig {
            num_transactions: transactions,
            seed,
            ..Default::default()
        })
        .generate(),
        GenKind::Basket => BasketGenerator::new(BasketConfig {
            num_baskets: transactions,
            seed,
            ..Default::default()
        })
        .generate(),
    };
    fimi::write_file(output, &db).map_err(|e| format!("cannot write {output}: {e}"))?;
    writeln!(out, "wrote {} ({})", output, DbStats::of(&db)).map_err(|e| e.to_string())
}
