//! Exact sliding-window mining over a maintained PLT.
//!
//! The window holds the last `capacity` transactions; each arrival beyond
//! capacity evicts the oldest. The PLT is updated by
//! [`Plt::insert_transaction`]/[`Plt::remove_transaction`], so a slide
//! costs two vector-map updates instead of a rebuild.
//!
//! One structural caveat, inherited from the `Rank` function being frozen
//! per structure: items are ranked when the window is created (from the
//! warm-up transactions). Items that only appear later are invisible until
//! [`SlidingWindow::rerank`] is called — the trade every rank-based
//! structure (FP-tree included) makes. `rerank` rebuilds from the current
//! window contents and is `O(window)`.

use std::collections::VecDeque;

use plt_core::conditional::ConditionalMiner;
use plt_core::item::{Item, Support};
use plt_core::miner::{Mine, MiningResult};
use plt_core::plt::Plt;
use plt_core::ranking::{ItemRanking, RankPolicy};
use plt_core::Result;

/// An exact frequent-itemset view over the most recent transactions.
///
/// # Examples
///
/// ```
/// use plt_core::ranking::RankPolicy;
/// use plt_stream::SlidingWindow;
///
/// // Items 1, 2, 3 are all frequent in the warm-up, so all get ranks.
/// let warmup = vec![vec![1, 2], vec![1, 2], vec![1, 3], vec![3]];
/// let mut w = SlidingWindow::new(4, 2, RankPolicy::Lexicographic, &warmup).unwrap();
/// assert_eq!(w.mine().support(&[1, 2]), Some(2));
/// // Slide: the oldest {1,2} leaves, {2,3} enters.
/// let evicted = w.push(vec![2, 3]).unwrap();
/// assert_eq!(evicted, Some(vec![1, 2]));
/// assert_eq!(w.mine().support(&[3]), Some(3));
/// assert!(w.mine().support(&[1, 2]).is_none()); // support fell to 1
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    plt: Plt,
    window: VecDeque<Vec<Item>>,
    capacity: usize,
    min_support: Support,
    rank_policy: RankPolicy,
}

impl SlidingWindow {
    /// Creates a window of `capacity` transactions. `warmup` seeds the
    /// ranking (and the window, up to capacity); it is typically the first
    /// chunk of the stream.
    pub fn new(
        capacity: usize,
        min_support: Support,
        rank_policy: RankPolicy,
        warmup: &[Vec<Item>],
    ) -> Result<SlidingWindow> {
        assert!(capacity >= 1, "window capacity must be at least 1");
        let ranking = ItemRanking::scan(warmup, min_support, rank_policy);
        let mut w = SlidingWindow {
            plt: Plt::new(ranking, min_support)?,
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_support,
            rank_policy,
        };
        for t in warmup {
            w.push(t.clone())?;
        }
        Ok(w)
    }

    /// Number of transactions currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True before any transaction arrived.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The maintained PLT (for oracles, compression, inspection).
    pub fn plt(&self) -> &Plt {
        &self.plt
    }

    /// Pushes one transaction, evicting the oldest when full. Returns the
    /// evicted transaction, if any.
    pub fn push(&mut self, transaction: Vec<Item>) -> Result<Option<Vec<Item>>> {
        let mut sorted = transaction;
        sorted.sort_unstable();
        sorted.dedup();
        let evicted = if self.window.len() == self.capacity {
            let old = self.window.pop_front().expect("len == capacity >= 1");
            self.plt.remove_transaction(&old)?;
            Some(old)
        } else {
            None
        };
        self.plt.insert_transaction(&sorted)?;
        self.window.push_back(sorted);
        Ok(evicted)
    }

    /// Mines the current window exactly (conditional approach). Items
    /// unranked since the last [`rerank`](Self::rerank) are not reported.
    pub fn mine(&self) -> MiningResult {
        ConditionalMiner::default().mine_plt(&self.plt)
    }

    /// Rebuilds the ranking (and PLT) from the current window contents —
    /// call when the item vocabulary has drifted.
    pub fn rerank(&mut self) -> Result<()> {
        let transactions: Vec<Vec<Item>> = self.window.iter().cloned().collect();
        let ranking = ItemRanking::scan(&transactions, self.min_support, self.rank_policy);
        let mut plt = Plt::new(ranking, self.min_support)?;
        for t in &transactions {
            plt.insert_transaction(t)?;
        }
        self.plt = plt;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plt_core::miner::{BruteForceMiner, Miner};
    use proptest::prelude::*;

    fn stream(n: usize) -> Vec<Vec<Item>> {
        (0..n as u32)
            .map(|i| {
                let mut t = vec![i % 6, 6 + (i % 4)];
                if i % 3 == 0 {
                    t.push(10);
                }
                t.sort_unstable();
                t
            })
            .collect()
    }

    #[test]
    fn window_mining_equals_batch_mining() {
        let s = stream(120);
        let mut w = SlidingWindow::new(40, 5, RankPolicy::Lexicographic, &s[..40]).unwrap();
        for (i, t) in s[40..].iter().enumerate() {
            w.push(t.clone()).unwrap();
            if i % 17 == 0 {
                // Compare against a fresh batch over the same 40
                // transactions — rerank first so rankings agree on scope.
                w.rerank().unwrap();
                let lo = i + 1;
                let batch: Vec<Vec<Item>> = s[lo..lo + 40].to_vec();
                let expect = BruteForceMiner.mine(&batch, 5);
                assert_eq!(w.mine().sorted(), expect.sorted(), "at slide {i}");
            }
        }
    }

    #[test]
    fn eviction_keeps_len_at_capacity() {
        let s = stream(30);
        let mut w = SlidingWindow::new(10, 2, RankPolicy::Lexicographic, &s[..10]).unwrap();
        assert_eq!(w.len(), 10);
        let evicted = w.push(vec![1, 2]).unwrap();
        assert_eq!(evicted, Some(s[0].clone()));
        assert_eq!(w.len(), 10);
        assert_eq!(w.capacity(), 10);
        assert!(!w.is_empty());
    }

    #[test]
    fn warmup_shorter_than_capacity() {
        let s = stream(5);
        let mut w = SlidingWindow::new(10, 1, RankPolicy::Lexicographic, &s).unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(w.push(vec![0, 6]).unwrap(), None); // no eviction yet
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn unknown_items_become_visible_after_rerank() {
        let warmup = vec![vec![1, 2]; 10];
        let mut w = SlidingWindow::new(10, 3, RankPolicy::Lexicographic, &warmup).unwrap();
        // Flood with a new item the warm-up never saw.
        for _ in 0..10 {
            w.push(vec![7, 8]).unwrap();
        }
        assert!(!w.mine().contains(&[7])); // invisible: unranked
        w.rerank().unwrap();
        assert_eq!(w.mine().support(&[7, 8]), Some(10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// After arbitrary slides and a rerank, window mining equals
        /// batch mining of the same transactions.
        #[test]
        fn prop_window_equals_batch(
            s in proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 1..5),
                20..60,
            ),
            capacity in 5usize..20,
            min_support in 1u64..4,
        ) {
            let s: Vec<Vec<Item>> = s.into_iter()
                .map(|t| t.into_iter().collect())
                .collect();
            let warm = capacity.min(s.len());
            let mut w = SlidingWindow::new(
                capacity, min_support, RankPolicy::Lexicographic, &s[..warm],
            ).unwrap();
            for t in &s[warm..] {
                w.push(t.clone()).unwrap();
            }
            w.rerank().unwrap();
            let lo = s.len().saturating_sub(capacity);
            let expect = BruteForceMiner.mine(&s[lo..], min_support);
            prop_assert_eq!(w.mine().sorted(), expect.sorted());
        }
    }
}
