//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! The workspace Fx hash is fast but was designed for hash tables, not
//! error detection; CRC32 has guaranteed burst-error detection properties
//! that make it the right frame check for on-disk formats. The PLTC v2
//! header and every plt-store WAL record and segment file carry one.
//!
//! Table-driven, one table, no dependencies. Byte-identical to the common
//! `crc32fast`/zlib CRC so externally written files can be checked with
//! standard tooling.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0, bytes)
}

/// Continues a CRC32 computation: `crc32_update(crc32(a), b) == crc32(a ++ b)`.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard zlib/PNG test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn update_is_concatenation() {
        let whole = crc32(b"hello world");
        let split = crc32_update(crc32(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"positional lexicographic tree".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
