//! # plt-obs — structured observability for the PLT workspace
//!
//! A deliberately tiny, std-only instrumentation layer: hierarchical
//! **span timers** (`construct/rank`, `mine/conditional`, …), monotonic
//! **counters** (vectors folded, dedup hits, …) and **gauge** snapshots
//! (arena bytes peak, worker count), all behind the [`Recorder`] trait.
//!
//! The design goal is *zero cost when disabled*: instrumented code holds
//! an [`Obs`] handle — a null-object wrapper over
//! `Option<&mut dyn Recorder>` — and every operation on a disabled
//! handle is a branch on a `None` that the optimiser folds away. In
//! particular [`Obs::start`] only reads the clock when a recorder is
//! installed, so hot loops never pay for `Instant::now`.
//!
//! Two usage shapes:
//!
//! ```
//! use plt_obs::{MetricsRecorder, Obs};
//!
//! fn work(obs: &mut Obs) -> u64 {
//!     let t = obs.start();
//!     let answer = (0..100u64).sum();
//!     obs.stop("demo/sum", t);
//!     obs.counter("demo.calls", 1);
//!     answer
//! }
//!
//! // Disabled: no recorder, no clock reads, no allocation.
//! assert_eq!(work(&mut Obs::none()), 4950);
//!
//! // Enabled: spans and counters accumulate in a MetricsRecorder.
//! let mut rec = MetricsRecorder::new();
//! work(&mut Obs::new(&mut rec));
//! assert_eq!(rec.counter_value("demo.calls"), 1);
//! assert_eq!(rec.span_count("demo/sum"), 1);
//! ```
//!
//! Span paths are `'static` slash-separated strings (`phase/subphase`),
//! so recording never allocates; the hierarchy is by convention, encoded
//! in the path. Counters add, gauges keep the **maximum** observed value
//! (the natural merge for peaks like `arena.bytes_peak`), and
//! [`MetricsRecorder::merge`] folds per-worker recorders into one —
//! used by `plt-parallel` at rayon reduce time.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Sink for observability events. Implementations must be cheap: the
/// instrumented code calls these inline from mining loops.
///
/// Spans arrive *after* completion as `(path, elapsed nanoseconds)` —
/// recorders never manage open-span state, which keeps the trait
/// object-safe and implementations trivially mergeable.
pub trait Recorder {
    /// A completed span: `path` is a static slash-separated identifier
    /// like `"construct/rank"`, `nanos` its wall-clock duration.
    fn span(&mut self, path: &'static str, nanos: u64);
    /// Adds `delta` to a monotonic counter.
    fn counter(&mut self, name: &'static str, delta: u64);
    /// Records a gauge observation. Aggregation is recorder-defined;
    /// [`MetricsRecorder`] keeps the maximum.
    fn gauge(&mut self, name: &'static str, value: u64);
}

/// A possibly-absent recorder handle threaded through instrumented code.
///
/// `Obs::none()` is the disabled handle: every method is a no-op and
/// [`Obs::start`] returns `None` without touching the clock. Pass
/// `&mut Obs` down call chains; use [`Obs::reborrow`] where a child
/// needs its own `Obs` value (e.g. across a `for` loop).
pub struct Obs<'a>(Option<&'a mut dyn Recorder>);

impl<'a> Obs<'a> {
    /// The disabled handle — all operations are no-ops.
    pub fn none() -> Obs<'static> {
        Obs(None)
    }

    /// An enabled handle feeding `recorder`.
    pub fn new(recorder: &'a mut dyn Recorder) -> Obs<'a> {
        Obs(Some(recorder))
    }

    /// True when a recorder is installed. Use to gate instrumentation
    /// whose *setup* is itself expensive (e.g. walking arena levels to
    /// compute a bytes peak).
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Starts a span clock — reads `Instant::now()` only when enabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.0.is_some() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Completes a span started with [`Obs::start`].
    #[inline]
    pub fn stop(&mut self, path: &'static str, started: Option<Instant>) {
        if let (Some(rec), Some(t)) = (self.0.as_deref_mut(), started) {
            rec.span(path, t.elapsed().as_nanos() as u64);
        }
    }

    /// Times a closure as one span. For fallible bodies, have the
    /// closure return the `Result` and propagate outside.
    #[inline]
    pub fn time<R>(&mut self, path: &'static str, f: impl FnOnce() -> R) -> R {
        let t = self.start();
        let r = f();
        self.stop(path, t);
        r
    }

    /// Records an externally timed span — for durations measured where no
    /// `Obs` handle can travel (e.g. inside a rayon worker) and reported
    /// after the join. One call is one span observation, exactly as if the
    /// work had been wrapped in [`Obs::start`]/[`Obs::stop`].
    #[inline]
    pub fn span(&mut self, path: &'static str, elapsed: std::time::Duration) {
        if let Some(rec) = self.0.as_deref_mut() {
            rec.span(path, elapsed.as_nanos() as u64);
        }
    }

    /// Adds to a counter.
    #[inline]
    pub fn counter(&mut self, name: &'static str, delta: u64) {
        if let Some(rec) = self.0.as_deref_mut() {
            rec.counter(name, delta);
        }
    }

    /// Records a gauge observation.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        if let Some(rec) = self.0.as_deref_mut() {
            rec.gauge(name, value);
        }
    }

    /// A shorter-lived handle on the same recorder, for passing into
    /// helpers while retaining this one.
    pub fn reborrow(&mut self) -> Obs<'_> {
        match self.0.as_deref_mut() {
            Some(rec) => Obs(Some(rec)),
            None => Obs(None),
        }
    }
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Obs")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

/// Accumulated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans on this path.
    pub count: u64,
    /// Total nanoseconds across those spans.
    pub total_ns: u64,
}

/// The workspace's standard [`Recorder`]: accumulates spans, counters
/// and gauges in sorted maps, merges across workers, and renders the
/// stable metrics JSON schema documented in `DESIGN.md` §8.
#[derive(Debug, Clone, Default)]
pub struct MetricsRecorder {
    spans: BTreeMap<&'static str, SpanStat>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> MetricsRecorder {
        MetricsRecorder::default()
    }

    /// Folds another recorder into this one: span counts/totals and
    /// counters add; gauges take the maximum.
    pub fn merge(&mut self, other: &MetricsRecorder) {
        for (path, stat) in &other.spans {
            let s = self.spans.entry(path).or_default();
            s.count += stat.count;
            s.total_ns += stat.total_ns;
        }
        for (name, delta) in &other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            let g = self.gauges.entry(name).or_insert(0);
            *g = (*g).max(*value);
        }
    }

    /// Stats for a span path (zero if never recorded).
    pub fn span_stat(&self, path: &str) -> SpanStat {
        self.spans.get(path).copied().unwrap_or_default()
    }

    /// Completed-span count for a path.
    pub fn span_count(&self, path: &str) -> u64 {
        self.span_stat(path).count
    }

    /// Total nanoseconds for a path.
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.span_stat(path).total_ns
    }

    /// Current value of a counter (zero if never recorded).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (zero if never recorded).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All span paths, sorted.
    pub fn span_paths(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.spans.keys().copied()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Renders the metrics JSON schema with no context block.
    pub fn to_json(&self) -> String {
        self.to_json_with(&[])
    }

    /// Renders the stable metrics JSON schema (`DESIGN.md` §8):
    ///
    /// ```json
    /// {
    ///   "schema_version": 1,
    ///   "context": { "<key>": <pre-rendered JSON value>, ... },
    ///   "spans": { "<path>": { "count": u64, "total_ns": u64 }, ... },
    ///   "counters": { "<name>": u64, ... },
    ///   "gauges": { "<name>": u64, ... }
    /// }
    /// ```
    ///
    /// `context` entries are `(key, value)` pairs where `value` is
    /// already-valid JSON (callers quote their own strings); keys are
    /// emitted in the order given. Map keys are sorted (BTreeMap), so
    /// output is deterministic for a given recording.
    pub fn to_json_with(&self, context: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n  \"schema_version\": 1,\n  \"context\": {");
        for (i, (key, value)) in context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape_json(key), value);
        }
        if !context.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": {");
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{ \"count\": {}, \"total_ns\": {} }}",
                escape_json(path),
                stat.count,
                stat.total_ns
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), value);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", escape_json(name), value);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

impl Recorder for MetricsRecorder {
    fn span(&mut self, path: &'static str, nanos: u64) {
        let s = self.spans.entry(path).or_default();
        s.count += 1;
        s.total_ns += nanos;
    }

    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &'static str, value: u64) {
        let g = self.gauges.entry(name).or_insert(0);
        *g = (*g).max(value);
    }
}

/// Escapes a string for inclusion inside JSON double quotes.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let mut obs = Obs::none();
        assert!(!obs.enabled());
        assert!(obs.start().is_none());
        obs.stop("a/b", None);
        obs.counter("c", 5);
        obs.gauge("g", 5);
        assert_eq!(obs.time("a/t", || 41 + 1), 42);
        assert!(!obs.reborrow().enabled());
    }

    #[test]
    fn spans_counters_gauges_accumulate() {
        let mut rec = MetricsRecorder::new();
        {
            let mut obs = Obs::new(&mut rec);
            assert!(obs.enabled());
            obs.time("phase/a", || {
                std::thread::sleep(std::time::Duration::from_micros(50))
            });
            obs.time("phase/a", || ());
            obs.counter("hits", 3);
            obs.counter("hits", 4);
            obs.gauge("peak", 10);
            obs.gauge("peak", 7); // max wins
        }
        assert_eq!(rec.span_count("phase/a"), 2);
        assert!(rec.span_total_ns("phase/a") >= 50_000);
        assert_eq!(rec.counter_value("hits"), 7);
        assert_eq!(rec.gauge_value("peak"), 10);
        assert_eq!(rec.span_count("never"), 0);
        assert!(!rec.is_empty());
    }

    #[test]
    fn start_stop_matches_manual_timing() {
        let mut rec = MetricsRecorder::new();
        {
            let mut obs = Obs::new(&mut rec);
            let t = obs.start();
            assert!(t.is_some());
            obs.stop("manual", t);
            // A stop with no started instant records nothing.
            obs.stop("manual", None);
        }
        assert_eq!(rec.span_count("manual"), 1);
    }

    #[test]
    fn reborrow_feeds_the_same_recorder() {
        let mut rec = MetricsRecorder::new();
        {
            let mut obs = Obs::new(&mut rec);
            for _ in 0..3 {
                let mut child = obs.reborrow();
                child.counter("loop", 1);
            }
        }
        assert_eq!(rec.counter_value("loop"), 3);
    }

    #[test]
    fn merge_adds_spans_and_counters_and_maxes_gauges() {
        let mut a = MetricsRecorder::new();
        a.span("p", 100);
        a.counter("c", 1);
        a.gauge("g", 5);
        let mut b = MetricsRecorder::new();
        b.span("p", 50);
        b.span("q", 7);
        b.counter("c", 2);
        b.counter("d", 9);
        b.gauge("g", 3);
        b.gauge("h", 1);
        a.merge(&b);
        assert_eq!(
            a.span_stat("p"),
            SpanStat {
                count: 2,
                total_ns: 150
            }
        );
        assert_eq!(
            a.span_stat("q"),
            SpanStat {
                count: 1,
                total_ns: 7
            }
        );
        assert_eq!(a.counter_value("c"), 3);
        assert_eq!(a.counter_value("d"), 9);
        assert_eq!(a.gauge_value("g"), 5);
        assert_eq!(a.gauge_value("h"), 1);
    }

    #[test]
    fn json_schema_is_stable_and_escaped() {
        let mut rec = MetricsRecorder::new();
        rec.span("mine/total", 1234);
        rec.counter("arena.dedup_hits", 5);
        rec.gauge("arena.bytes_peak", 4096);
        let json = rec.to_json_with(&[
            ("input", "\"data.dat\"".to_string()),
            ("min_support", "3".to_string()),
        ]);
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"input\": \"data.dat\""));
        assert!(json.contains("\"min_support\": 3"));
        assert!(json.contains("\"mine/total\": { \"count\": 1, \"total_ns\": 1234 }"));
        assert!(json.contains("\"arena.dedup_hits\": 5"));
        assert!(json.contains("\"arena.bytes_peak\": 4096"));
        // Empty recorder still renders every top-level key.
        let empty = MetricsRecorder::new().to_json();
        for key in ["context", "spans", "counters", "gauges"] {
            assert!(empty.contains(&format!("\"{key}\"")), "{empty}");
        }
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
