//! Exact reproductions of the paper's exhibits (experiments E-T1 and
//! E-F1…E-F5 in `DESIGN.md`).
//!
//! Every function returns the regenerated artefact both as data (for the
//! integration tests, which assert exact equality with the hand-derived
//! values in the paper) and rendered as text (for the `experiments`
//! binary). Items A..F of the paper are mapped to integers 0..5.

use plt_core::conditional::extract_conditional;
use plt_core::construct::{construct, ConstructOptions};
use plt_core::item::{Item, Support};
use plt_core::plt::Plt;
use plt_core::posvec::PositionVector;
use plt_core::topdown::all_subset_supports;
use plt_core::tree::LexTree;

/// The paper's Table 1: six transactions over items A..F (here 0..5).
pub fn table1_db() -> Vec<Vec<Item>> {
    vec![
        vec![0, 1, 2],    // 1: ABC
        vec![0, 1, 2],    // 2: ABC
        vec![0, 1, 2, 3], // 3: ABCD
        vec![0, 1, 3, 4], // 4: ABDE
        vec![1, 2, 3],    // 5: BCD
        vec![2, 3, 5],    // 6: CDF
    ]
}

/// Item letter (paper notation) for an item id.
pub fn item_letter(item: Item) -> char {
    (b'A' + item as u8) as char
}

/// The minimum (absolute) support the paper's walkthrough uses.
pub const PAPER_MIN_SUPPORT: Support = 2;

/// The Table 1 PLT (no prefixes — Figure 3's construction).
pub fn table1_plt() -> Plt {
    construct(
        &table1_db(),
        PAPER_MIN_SUPPORT,
        ConstructOptions::conditional(),
    )
    .expect("paper database is well-formed")
}

/// E-T1 — frequent 1-items of Table 1 with their supports and ranks:
/// `{(A,4),(B,5),(C,5),(D,4)}`, `Rank(A)=1 … Rank(D)=4`.
pub fn exp_t1() -> String {
    use std::fmt::Write;
    let plt = table1_plt();
    let mut out = String::from("Table 1 scan (min_sup = 2): frequent 1-items and ranks\n");
    for (item, rank, support) in plt.ranking().entries() {
        writeln!(
            out,
            "  Rank({}) = {rank}   support = {support}",
            item_letter(item)
        )
        .unwrap();
    }
    out
}

/// E-F1 — the complete lexicographic tree over {A,B,C,D} (Figure 1).
pub fn exp_f1() -> (LexTree, String) {
    let tree = LexTree::complete(4);
    let text = format!(
        "Lexicographic tree over {{A,B,C,D}} — {} nodes, height {}\n{}",
        tree.size(),
        tree.height(),
        tree.render()
    );
    (tree, text)
}

/// E-F2 — the same tree annotated with position values (Figure 2). The
/// rendering already shows `rank(pos)`; this variant highlights the
/// position annotation the PLT adds.
pub fn exp_f2() -> (LexTree, String) {
    let tree = LexTree::complete(4);
    let text = format!(
        "PLT annotation: each node shows rank(pos), pos = Rank(child) − Rank(parent)\n{}",
        tree.render()
    );
    (tree, text)
}

/// E-F3 — the PLT of Table 1 in both of Figure 3's views: (a) the
/// matrices (partitions), (b) the physical tree.
pub fn exp_f3() -> (Plt, String) {
    let plt = table1_plt();
    let tree = LexTree::from_plt(&plt);
    let text = format!(
        "(a) matrices view:\n{}\n(b) tree view:\n{}",
        plt.render_matrices(),
        tree.render()
    );
    (plt, text)
}

/// E-F4 — the database after the top-down pass (Figure 4): every subset
/// present in the database with its total frequency.
pub fn exp_f4() -> (Plt, String) {
    let plt = table1_plt();
    let table = all_subset_supports(&plt);
    let fig4 = table.as_plt(&plt);
    let text = format!(
        "database after top-down propagation ({} itemsets):\n{}",
        fig4.num_vectors(),
        fig4.render_matrices()
    );
    (fig4, text)
}

/// E-F5 — D's conditional database and the residual PLT after extraction
/// (Figure 5). Returns `(support_of_D, conditional_db, residual)` plus the
/// rendering.
#[allow(clippy::type_complexity)]
pub fn exp_f5() -> (Support, Vec<(PositionVector, Support)>, Plt, String) {
    use std::fmt::Write;
    let plt = table1_plt();
    // D holds rank 4.
    let (support, cd, residual) = extract_conditional(&plt, 4);
    let mut text = format!("support(D) = {support}\n(a) D's conditional database:\n");
    for (v, f) in &cd {
        writeln!(text, "  {v}  freq={f}").unwrap();
    }
    write!(
        text,
        "(b) the PLT after extracting D:\n{}",
        residual.render_matrices()
    )
    .unwrap();
    (support, cd, residual, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_text_contains_paper_values() {
        let s = exp_t1();
        assert!(s.contains("Rank(A) = 1   support = 4"));
        assert!(s.contains("Rank(B) = 2   support = 5"));
        assert!(s.contains("Rank(C) = 3   support = 5"));
        assert!(s.contains("Rank(D) = 4   support = 4"));
        assert!(!s.contains("Rank(E)"));
    }

    #[test]
    fn f1_f2_tree_shape() {
        let (tree, text) = exp_f1();
        assert_eq!(tree.size(), 16);
        assert!(text.contains("16 nodes"));
        let (_, t2) = exp_f2();
        assert!(t2.contains("rank(pos)"));
    }

    #[test]
    fn f3_partitions() {
        let (plt, text) = exp_f3();
        assert_eq!(plt.num_vectors(), 5);
        assert!(text.contains("[1,1,1]  sum=3  freq=2"));
        assert!(text.contains("(b) tree view:"));
    }

    #[test]
    fn f4_all_subsets() {
        let (fig4, text) = exp_f4();
        assert_eq!(fig4.num_vectors(), 15);
        assert!(text.contains("15 itemsets"));
    }

    #[test]
    fn f5_conditional() {
        let (support, cd, residual, text) = exp_f5();
        assert_eq!(support, 4);
        assert_eq!(cd.len(), 4);
        assert_eq!(residual.num_vectors(), 4);
        assert!(text.contains("support(D) = 4"));
    }
}
